//! The trusted server: web-service operations, compatibility checks, context
//! generation, the pusher — and the federation reliability plane that keeps
//! pushed packages alive over a lossy transport.
//!
//! Every downlink package carries a per-vehicle monotonically increasing
//! sequence id ([`DownlinkEnvelope`]).  Until the matching acknowledgement
//! arrives the package stays *outstanding*: [`TrustedServer::tick`]
//! retransmits it (same sequence id, so the ECM gateway deduplicates) each
//! time its deadline lapses, and after [`RetryPolicy::max_attempts`]
//! escalates into a typed [`DynarError::RetryExhausted`] plus a
//! [`DeploymentStatus::Failed`] record — a lossy link degrades into an
//! explicit failure, never a silent hang.
//!
//! # Lifecycle & desired-state reconciliation
//!
//! On top of the imperative pusher sits a convergent control loop.  Each
//! vehicle keeps a declarative **desired manifest** (the applications it
//! should run) next to the **observed** installed set;
//! [`TrustedServer::reconcile`] diffs the two and emits the minimal
//! install/uninstall downlink set.  Failures are retried, never terminal.
//! Vehicles whose endpoint is known dead are **parked**
//! ([`TrustedServer::mark_offline`]): deadlines freeze instead of burning the
//! retry budget, until [`TrustedServer::mark_online`] — or, for a *rebooted*
//! vehicle, the ECM's post-boot [`ManagementMessage::StateReport`] — brings
//! them back.  Every downlink is stamped with the vehicle's **boot epoch**;
//! a report with a newer epoch voids all old-epoch bookkeeping (the ECM's
//! volatile state is gone) and resyncs the observed set from the vehicle's
//! ground truth before reconciling.  Permanently removed vehicles fail fast
//! with the distinct [`DynarError::VehicleUnreachable`]
//! ([`TrustedServer::mark_unreachable`]).
//!
//! # Sharded control plane
//!
//! Per-vehicle state (downlink queues, outstanding packages, deadline heaps,
//! epoch bookkeeping, observed/desired manifests) lives in N **shards**, each
//! behind its own mutex; a vehicle's shard is a pure function of its VIN
//! ([`TrustedServer::shard_index`]), so two vehicles on different shards never
//! contend.  The catalogue, retry policy, ledger and clock form a shared
//! read-mostly plane ([`parking_lot`] locks; the ledger is updated through
//! commutative per-shard deltas).  The serial API (`&mut self`) is unchanged;
//! a parallel driver instead calls [`TrustedServer::begin_tick`], fans
//! per-shard work out through [`TrustedServer::shard_handles`] and joins with
//! [`TrustedServer::merge_shard_journals`].  Journal records produced by
//! concurrent shards are buffered per shard and merged in deterministic order
//! (shard id, then per-shard sequence), so replay byte-identity survives
//! parallelism: per-vehicle record order is preserved within its shard, and
//! cross-vehicle operations commute.
//!
//! Lock order everywhere: catalogue (`apps`) → shard → ledger.  The journal
//! is only touched from `&mut self` methods, and always *before* any guard is
//! taken — compaction snapshots the whole plane and must not deadlock against
//! a held shard.
//!
//! # Hot-path discipline
//!
//! [`TrustedServer::tick`] runs once per fleet tick for every vehicle, so its
//! steady state must not scale with the number of outstanding operations:
//! each vehicle keeps a deadline-ordered min-heap over its outstanding
//! packages (lazily invalidated when acknowledgements settle entries), and a
//! quiescent vehicle costs one heap peek.  Encoded downlink payloads are
//! shared [`Payload`] buffers: the retransmission cache, the downlink queue
//! and the transport all hold the same allocation.  Each shard additionally
//! keeps a **dirty set** of vehicles with queued downlinks, so draining a
//! quiescent fleet ([`TrustedServer::poll_downlink_dirty`]) is O(active), not
//! O(vehicles).
//!
//! # Durability
//!
//! The server's state is volatile by default; [`TrustedServer::enable_journal`]
//! turns on the write-ahead journal (see [`crate::journal`]): every mutating
//! API call is recorded *before* it runs, and the journal is periodically
//! compacted into a full-state snapshot.  [`TrustedServer::replay`] rebuilds a
//! crashed server from those bytes, byte-for-byte
//! ([`TrustedServer::snapshot_bytes`] is the canonical comparison form).
//! Because the pre-crash server may have handed out downlinks whose
//! acknowledgements are still in flight, every downlink envelope is stamped
//! with the server **incarnation id** — the off-board mirror of the vehicle
//! boot epoch.  [`TrustedServer::begin_incarnation`] (called after a replay)
//! bumps it, re-stamps everything still queued or outstanding, and solicits a
//! state report from every vehicle so the observed state resynchronises; the
//! gateways reject downlinks from older incarnations, so a zombie pre-crash
//! process cannot race its successor.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use dynar_core::context::{
    ExternalConnectionContext, InstallationContext, LinkTarget, PortInitContext, PortLinkContext,
};
use dynar_core::message::{
    Ack, AckStatus, DownlinkEnvelope, InstallationPackage, ManagementMessage,
};
use dynar_foundation::codec;
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, EcuId, PluginId, PluginPortId, UserId, VehicleId};
use dynar_foundation::journal::{fnv1a, FrameReader};
use dynar_foundation::payload::Payload;
use dynar_foundation::time::Tick;
use dynar_foundation::value::Value;

use crate::campaign::{
    Campaign, CampaignEvent, CampaignId, CampaignSpec, CampaignStatus, VehicleSelector,
};
use crate::journal::{Journal, JournalRecord};
use crate::ledger::Ledger;
use crate::model::{
    AppDefinition, ConnectionDecl, HwConf, SwConf, SystemSwConf, VirtualPortKindDecl,
};

/// Retransmission parameters of the reliability plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ticks a pushed package may stay unacknowledged before it is
    /// retransmitted.
    pub ack_deadline_ticks: u64,
    /// Total delivery attempts (first push included) before the operation is
    /// escalated as [`DynarError::RetryExhausted`].
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ack_deadline_ticks: 25,
            max_attempts: 8,
        }
    }
}

/// One escalated operation reported by [`TrustedServer::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryFailure {
    /// The vehicle whose link gave up.
    pub vehicle: VehicleId,
    /// The application the abandoned package belonged to.
    pub app: AppId,
    /// The plug-in the abandoned package addressed.
    pub plugin: PluginId,
    /// The typed reason ([`DynarError::RetryExhausted`]).
    pub error: DynarError,
}

/// A pushed downlink package awaiting its acknowledgement.
#[derive(Debug, Clone)]
struct OutstandingDownlink {
    seq: u64,
    ecu: EcuId,
    plugin: PluginId,
    app: AppId,
    kind: PendingKind,
    /// The encoded envelope, retransmitted verbatim (same sequence id) — a
    /// shared buffer, so caching and every retransmission are refcount bumps.
    payload: Payload,
    attempts: u32,
    deadline: Tick,
}

/// The status of one application's deployment on one vehicle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeploymentStatus {
    /// The application is not installed and no operation is in flight.
    NotInstalled,
    /// Packages were pushed; acknowledgements from these plug-ins are still
    /// outstanding.
    Pending {
        /// Plug-ins whose acknowledgement has not arrived yet.
        awaiting: Vec<PluginId>,
    },
    /// Every plug-in acknowledged installation.
    Installed,
    /// The last operation failed with the given reason.
    Failed(String),
}

#[derive(Debug, Clone)]
struct InstalledApp {
    plugins: Vec<(PluginId, EcuId)>,
    packages: Vec<(EcuId, InstallationPackage)>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PendingKind {
    Install,
    Uninstall,
}

#[derive(Debug, Clone)]
struct PendingOperation {
    kind: PendingKind,
    awaiting: HashSet<PluginId>,
    record: InstalledApp,
    failure: Option<String>,
}

#[derive(Debug, Clone)]
struct VehicleRecord {
    hw: HwConf,
    system: SystemSwConf,
    owner: Option<UserId>,
    /// The declarative *desired manifest*: the applications this vehicle
    /// should converge to, independent of what has been observed so far.
    /// [`TrustedServer::reconcile`] diffs it against `installed`.
    desired: BTreeSet<AppId>,
    /// The *observed* state: applications whose installation the vehicle
    /// acknowledged (resynced from the ECM's state reports after a reboot).
    installed: HashMap<AppId, InstalledApp>,
    pending: HashMap<AppId, PendingOperation>,
    failed: HashMap<AppId, String>,
    /// `false` while the vehicle's endpoint is known to be gone (reboot in
    /// progress, transport feedback): downlinks park and deadlines freeze
    /// instead of burning the retry budget against a dead link.
    online: bool,
    /// `true` while a [`ManagementMessage::StateReportRequest`] queued by the
    /// server has not been answered yet: the next report is *solicited* and
    /// must not be answered with another request (which would ping-pong
    /// request/report forever).  Unsolicited reports are the gateway's
    /// post-reboot announcements; when one triggers no downlink of its own, a
    /// confirmation request is queued so the gateway learns its new epoch
    /// reached the server and stops re-announcing.
    awaiting_report: bool,
    /// The vehicle boot epoch the server last confirmed (stamped into every
    /// downlink; the gateway rejects other epochs).
    boot_epoch: u32,
    next_port_id: HashMap<EcuId, u32>,
    downlink: Vec<Payload>,
    /// Next downlink sequence id (monotonically increasing per vehicle).
    next_seq: u64,
    /// Pushed packages whose acknowledgement is still outstanding.
    outstanding: Vec<OutstandingDownlink>,
    /// Deadline-ordered view over `outstanding`: `(deadline, seq)` pairs,
    /// lazily invalidated.  An entry is live only while `outstanding` still
    /// holds its `seq` with exactly that deadline; acknowledgements simply
    /// remove from `outstanding` and let the heap entry die on pop.  A
    /// quiescent [`TrustedServer::tick`] is therefore one `peek` per vehicle,
    /// independent of how many packages are outstanding.
    deadlines: BinaryHeap<Reverse<(Tick, u64)>>,
    /// `true` iff this vehicle currently sits in its shard's dirty set (the
    /// flag dedups re-inserts).  Not part of the durability snapshot — it is
    /// rebuilt from `online && !downlink.is_empty()` on decode.
    in_dirty: bool,
}

/// The read-mostly plane shared by every shard: the application catalogue,
/// the retry policy, the operation ledger and the (atomic) clock and
/// incarnation id.  Lock order: `apps` → (a shard) → `ledger`.
#[derive(Debug, Default)]
struct SharedPlane {
    apps: RwLock<HashMap<AppId, AppDefinition>>,
    policy: RwLock<RetryPolicy>,
    ledger: Mutex<Ledger>,
    now: AtomicU64,
    incarnation: AtomicU32,
}

impl SharedPlane {
    fn now(&self) -> Tick {
        Tick::new(self.now.load(Ordering::Relaxed))
    }

    fn incarnation(&self) -> u32 {
        self.incarnation.load(Ordering::Relaxed)
    }
}

/// One shard of per-vehicle state plus its side bands: the dirty set driving
/// O(active) downlink drains and the per-shard journal buffer merged (in
/// shard order) by [`TrustedServer::merge_shard_journals`].
#[derive(Debug, Default)]
struct Shard {
    vehicles: HashMap<VehicleId, VehicleRecord>,
    /// Vehicles with queued downlink payloads (each listed at most once —
    /// `VehicleRecord::in_dirty` dedups).  Drained by `op_poll_dirty` in
    /// sorted VIN order so delivery order is deterministic.
    dirty: Vec<VehicleId>,
    /// Journal records produced while this shard ran detached from the
    /// journal owner (the parallel phase); drained by
    /// [`TrustedServer::merge_shard_journals`].
    journal_buf: Vec<JournalRecord>,
}

impl Shard {
    /// Enrols `vehicle` in the dirty set if it has queued downlinks and is
    /// not already listed.
    fn note_dirty(&mut self, vehicle: &VehicleId) {
        if let Some(record) = self.vehicles.get_mut(vehicle) {
            if !record.in_dirty && !record.downlink.is_empty() {
                record.in_dirty = true;
                self.dirty.push(vehicle.clone());
            }
        }
    }
}

/// The shared-plane context one operation runs under: a borrowed catalogue
/// read guard plus point-in-time copies of the policy, clock and incarnation.
struct OpCtx<'a> {
    apps: &'a HashMap<AppId, AppDefinition>,
    policy: RetryPolicy,
    now: Tick,
    incarnation: u32,
}

impl SharedPlane {
    fn op_ctx<'a>(&self, apps: &'a HashMap<AppId, AppDefinition>) -> OpCtx<'a> {
        OpCtx {
            apps,
            policy: self.policy.read().clone(),
            now: self.now(),
            incarnation: self.incarnation(),
        }
    }
}

/// The trusted server of Figure 2.
///
/// # Example
///
/// See the crate-level example of `dynar-sim` and the `remote_control_car`
/// example binary for a full deployment round trip; the unit tests below
/// exercise every operation in isolation.
#[derive(Debug)]
pub struct TrustedServer {
    users: HashSet<UserId>,
    shared: Arc<SharedPlane>,
    shards: Vec<Arc<Mutex<Shard>>>,
    /// Rollout campaigns keyed by id: serial bookkeeping owned by the
    /// journal owner (`&mut self` only), layered over the sharded
    /// per-vehicle state — the parallel per-shard phase never touches it,
    /// so campaign decisions are deterministic at every shard count.
    campaigns: BTreeMap<CampaignId, Campaign>,
    /// The write-ahead journal, `None` until
    /// [`TrustedServer::enable_journal`].  Never set on a replayed-into
    /// server while records apply, so replay cannot re-journal itself.
    journal: Option<Journal>,
}

impl Default for TrustedServer {
    fn default() -> Self {
        TrustedServer::with_shards(1)
    }
}

/// A per-shard capability handed out by [`TrustedServer::shard_handles`]: it
/// can run the per-vehicle phase (tick, downlink drain, uplink processing,
/// offline parking) of its shard concurrently with the other shards'
/// handles.  Journal records are buffered in the shard (merged
/// deterministically by [`TrustedServer::merge_shard_journals`]); ledger
/// updates are accumulated locally and folded into the shared ledger as a
/// commutative delta.
#[derive(Debug)]
pub struct ShardHandle {
    index: usize,
    shard: Arc<Mutex<Shard>>,
    shared: Arc<SharedPlane>,
    journaling: bool,
}

impl TrustedServer {
    /// Creates an empty single-shard server.
    pub fn new() -> Self {
        TrustedServer::default()
    }

    /// Creates an empty server whose per-vehicle state is split over
    /// `shards` independently locked shards (clamped to at least 1).  The
    /// shard count is a runtime layout choice, not part of the logical
    /// state: snapshots and journals are byte-identical across shard counts.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        TrustedServer {
            users: HashSet::new(),
            shared: Arc::new(SharedPlane::default()),
            shards: (0..shards)
                .map(|_| Arc::new(Mutex::new(Shard::default())))
                .collect(),
            campaigns: BTreeMap::new(),
            journal: None,
        }
    }

    /// The number of shards the per-vehicle state is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a vehicle maps to under a `shards`-way split: a pure
    /// function of the VIN, so drivers can partition their own per-vehicle
    /// resources (transport hubs, worker queues) the same way.
    pub fn shard_index(vehicle: &VehicleId, shards: usize) -> usize {
        if shards <= 1 {
            0
        } else {
            fnv1a(vehicle.vin().as_bytes()) as usize % shards
        }
    }

    /// Locks and returns the shard owning `vehicle`.
    fn shard_of(&self, vehicle: &VehicleId) -> MutexGuard<'_, Shard> {
        self.shards[Self::shard_index(vehicle, self.shards.len())].lock()
    }

    // ------------------------------------------------------------------
    // User setup (web services)
    // ------------------------------------------------------------------

    /// Creates a user account.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the account already exists.
    pub fn create_user(&mut self, user: UserId) -> Result<()> {
        self.journal_append(|| JournalRecord::CreateUser(user.clone()));
        if !self.users.insert(user.clone()) {
            return Err(DynarError::duplicate("user", user));
        }
        Ok(())
    }

    /// Registers a vehicle together with its hardware and system software
    /// configuration (normally uploaded by the OEM).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the vehicle is already registered.
    pub fn register_vehicle(
        &mut self,
        vehicle: VehicleId,
        hw: HwConf,
        system: SystemSwConf,
    ) -> Result<()> {
        self.journal_append(|| {
            JournalRecord::RegisterVehicle(vehicle.clone(), hw.clone(), system.clone())
        });
        let mut shard = self.shard_of(&vehicle);
        if shard.vehicles.contains_key(&vehicle) {
            return Err(DynarError::duplicate("vehicle", vehicle));
        }
        shard.vehicles.insert(
            vehicle,
            VehicleRecord {
                hw,
                system,
                owner: None,
                desired: BTreeSet::new(),
                installed: HashMap::new(),
                pending: HashMap::new(),
                failed: HashMap::new(),
                online: true,
                boot_epoch: 0,
                awaiting_report: false,
                next_port_id: HashMap::new(),
                downlink: Vec::new(),
                next_seq: 0,
                outstanding: Vec::new(),
                deadlines: BinaryHeap::new(),
                in_dirty: false,
            },
        );
        Ok(())
    }

    /// Binds a vehicle to a user account.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown users or vehicles.
    pub fn bind_vehicle(&mut self, user: &UserId, vehicle: &VehicleId) -> Result<()> {
        self.journal_append(|| JournalRecord::BindVehicle(user.clone(), vehicle.clone()));
        if !self.users.contains(user) {
            return Err(DynarError::not_found("user", user));
        }
        let mut shard = self.shard_of(vehicle);
        let record = shard
            .vehicles
            .get_mut(vehicle)
            .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
        record.owner = Some(user.clone());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Uploads (web services)
    // ------------------------------------------------------------------

    /// Uploads an application (binaries plus deployment descriptions).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the application already exists
    /// and propagates [`AppDefinition::validate`] failures.
    pub fn upload_app(&mut self, app: AppDefinition) -> Result<()> {
        self.journal_append(|| JournalRecord::UploadApp(app.clone()));
        app.validate()?;
        let mut apps = self.shared.apps.write();
        if apps.contains_key(&app.id) {
            return Err(DynarError::duplicate("app", &app.id));
        }
        apps.insert(app.id.clone(), app);
        Ok(())
    }

    /// The applications recorded as installed on a vehicle.
    pub fn installed_apps(&self, vehicle: &VehicleId) -> Vec<AppId> {
        let mut apps: Vec<AppId> = self
            .shard_of(vehicle)
            .vehicles
            .get(vehicle)
            .map(|v| v.installed.keys().cloned().collect())
            .unwrap_or_default();
        apps.sort();
        apps
    }

    /// The deployment status of an application on a vehicle.
    pub fn deployment_status(&self, vehicle: &VehicleId, app: &AppId) -> DeploymentStatus {
        let shard = self.shard_of(vehicle);
        let Some(record) = shard.vehicles.get(vehicle) else {
            return DeploymentStatus::NotInstalled;
        };
        if let Some(pending) = record.pending.get(app) {
            return DeploymentStatus::Pending {
                awaiting: pending.awaiting.iter().cloned().collect(),
            };
        }
        // A failure outranks an installed record: a failed *uninstall* leaves
        // the app both installed (it is still partially present) and failed —
        // the failure is the newer fact and must not be masked.
        if let Some(reason) = record.failed.get(app) {
            return DeploymentStatus::Failed(reason.clone());
        }
        if record.installed.contains_key(app) {
            return DeploymentStatus::Installed;
        }
        DeploymentStatus::NotInstalled
    }

    // ------------------------------------------------------------------
    // Compatibility checking and context generation
    // ------------------------------------------------------------------

    /// Runs the compatibility and dependency checks and generates the
    /// installation packages (PIC/PLC/ECC included) for deploying `app` on
    /// `vehicle`, without pushing anything.
    ///
    /// # Errors
    ///
    /// Returns the deployment rejection the web portal would present to the
    /// user: [`DynarError::Incompatible`], [`DynarError::MissingDependency`]
    /// or [`DynarError::PluginConflict`]; or [`DynarError::NotFound`] for
    /// unknown entities.
    pub fn plan_deployment(
        &self,
        vehicle: &VehicleId,
        app: &AppId,
    ) -> Result<Vec<(EcuId, InstallationPackage)>> {
        let apps = self.shared.apps.read();
        let shard = self.shard_of(vehicle);
        let record = shard
            .vehicles
            .get(vehicle)
            .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
        Self::plan_for_record(record, &apps, app)
    }

    /// [`TrustedServer::plan_deployment`] against an already-resolved vehicle
    /// record (shared with the shard-local push path, which holds the shard
    /// guard and the catalogue read guard already).
    fn plan_for_record(
        record: &VehicleRecord,
        apps: &HashMap<AppId, AppDefinition>,
        app: &AppId,
    ) -> Result<Vec<(EcuId, InstallationPackage)>> {
        let definition = apps
            .get(app)
            .ok_or_else(|| DynarError::not_found("app", app))?;

        // Vehicle model must have a matching SW conf.
        let conf = definition
            .sw_conf_for(&record.system.model)
            .ok_or_else(|| {
                DynarError::Incompatible(format!(
                    "no deployment description for vehicle model {}",
                    record.system.model
                ))
            })?;

        // Hardware and system software prerequisites.
        for placement in &conf.placements {
            let hw = record.hw.ecu(placement.ecu).ok_or_else(|| {
                DynarError::Incompatible(format!(
                    "vehicle has no ECU {} required by plug-in {}",
                    placement.ecu, placement.plugin
                ))
            })?;
            if hw.memory_kb < conf.min_memory_kb {
                return Err(DynarError::Incompatible(format!(
                    "ECU {} offers {} KiB, {} KiB required",
                    placement.ecu, hw.memory_kb, conf.min_memory_kb
                )));
            }
            if record.system.swc_on(placement.ecu).is_none() {
                return Err(DynarError::Incompatible(format!(
                    "ECU {} has no plug-in SW-C",
                    placement.ecu
                )));
            }
        }

        // Dependencies and conflicts against the installed-app records.
        for required in &definition.requires {
            if !record.installed.contains_key(required) {
                return Err(DynarError::MissingDependency {
                    plugin: app.name().to_owned(),
                    requires: required.name().to_owned(),
                });
            }
        }
        for conflicting in &definition.conflicts {
            if record.installed.contains_key(conflicting) {
                return Err(DynarError::PluginConflict {
                    plugin: app.name().to_owned(),
                    conflicts_with: conflicting.name().to_owned(),
                });
            }
        }
        if record.installed.contains_key(app) || record.pending.contains_key(app) {
            return Err(DynarError::duplicate("installed app", app));
        }

        Self::generate_packages(record, definition, conf)
    }

    fn generate_packages(
        record: &VehicleRecord,
        definition: &AppDefinition,
        conf: &SwConf,
    ) -> Result<Vec<(EcuId, InstallationPackage)>> {
        // First pass: assign SW-C-scope unique plug-in port ids per target ECU
        // (continuing after ids already handed out to previously installed
        // plug-ins on that ECU).  The assignment map borrows its keys from
        // the app definition — no `(PluginId, String)` pair is cloned per
        // port or per lookup.
        let mut next_id: HashMap<EcuId, u32> = record.next_port_id.clone();
        let mut assigned: HashMap<(&PluginId, &str), PluginPortId> = HashMap::new();
        for placement in &conf.placements {
            let artifact = definition
                .plugin(&placement.plugin)
                .ok_or_else(|| DynarError::not_found("plug-in", &placement.plugin))?;
            let counter = next_id.entry(placement.ecu).or_insert(0);
            for port in &artifact.ports {
                assigned.insert(
                    (&placement.plugin, port.name.as_str()),
                    PluginPortId::new(*counter),
                );
                *counter += 1;
            }
        }

        // Second pass: build PIC, PLC and ECC per plug-in.
        let mut packages = Vec::new();
        for placement in &conf.placements {
            let artifact = definition
                .plugin(&placement.plugin)
                .expect("validated in the first pass");
            let swc = record
                .system
                .swc_on(placement.ecu)
                .expect("checked during the compatibility pass");

            let mut pic = PortInitContext::new();
            for port in &artifact.ports {
                let id = assigned[&(&placement.plugin, port.name.as_str())];
                pic = pic.with_port(&port.name, id, port.direction);
            }

            let mut plc = PortLinkContext::new();
            let mut ecc = ExternalConnectionContext::new();
            let mut has_ecc = false;
            for connection in conf
                .connections
                .iter()
                .filter(|c| c.plugin == placement.plugin)
            {
                let port_id = assigned[&(&placement.plugin, connection.port.as_str())];
                match &connection.target {
                    ConnectionDecl::Direct => {
                        plc = plc.with_link(port_id, LinkTarget::Direct);
                    }
                    ConnectionDecl::VirtualPort { name } => {
                        let decl = swc
                            .virtual_ports
                            .iter()
                            .find(|v| &v.name == name)
                            .ok_or_else(|| {
                                DynarError::Incompatible(format!(
                                    "SW-C {} exposes no virtual port named {name}",
                                    swc.swc_name
                                ))
                            })?;
                        plc = plc.with_link(port_id, LinkTarget::VirtualPort(decl.id));
                    }
                    ConnectionDecl::RemotePlugin { plugin, port } => {
                        let remote_id = assigned
                            .get(&(plugin, port.as_str()))
                            .copied()
                            .ok_or_else(|| {
                                DynarError::Incompatible(format!(
                                    "remote plug-in {plugin} has no port named {port}"
                                ))
                            })?;
                        let remote_ecu = conf.placement_of(plugin).ok_or_else(|| {
                            DynarError::Incompatible(format!("plug-in {plugin} is not placed"))
                        })?;
                        if remote_ecu == placement.ecu {
                            // Same SW-C: the PIRTE links the two plug-in ports
                            // directly, no virtual port involved.
                            plc = plc.with_link(port_id, LinkTarget::Direct);
                        } else {
                            let via = swc
                                .virtual_ports
                                .iter()
                                .find(|v| {
                                    matches!(v.kind, VirtualPortKindDecl::TypeII { peer } if peer == remote_ecu)
                                })
                                .ok_or_else(|| {
                                    DynarError::Incompatible(format!(
                                        "SW-C {} has no type II port towards {remote_ecu}",
                                        swc.swc_name
                                    ))
                                })?;
                            plc = plc.with_link(
                                port_id,
                                LinkTarget::RemotePluginPort {
                                    via: via.id,
                                    remote: remote_id,
                                },
                            );
                        }
                    }
                    ConnectionDecl::External {
                        endpoint,
                        message_id,
                    } => {
                        plc = plc.with_link(port_id, LinkTarget::Direct);
                        ecc = ecc.with_route(endpoint, message_id, placement.ecu, port_id);
                        has_ecc = true;
                    }
                }
            }

            let mut context = InstallationContext::new(pic, plc);
            if has_ecc {
                context = context.with_ecc(ecc);
            }
            context.validate()?;
            packages.push((
                placement.ecu,
                InstallationPackage::new(
                    placement.plugin.clone(),
                    definition.id.clone(),
                    artifact.binary.clone(),
                    context,
                ),
            ));
        }
        Ok(packages)
    }

    // ------------------------------------------------------------------
    // Deployment operations (pusher)
    // ------------------------------------------------------------------

    /// Deploys an application to a vehicle: runs the checks, generates the
    /// contexts, queues the installation packages for the vehicle's ECM and
    /// records the pending acknowledgements.  The application also enters the
    /// vehicle's *desired manifest*, so [`TrustedServer::reconcile`] keeps
    /// driving it towards `Installed` after failures or reboots.  Returns the
    /// number of packages pushed.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the user does not own the vehicle
    /// and the rejections documented on [`TrustedServer::plan_deployment`].
    pub fn deploy(&mut self, user: &UserId, vehicle: &VehicleId, app: &AppId) -> Result<usize> {
        self.journal_append(|| JournalRecord::Deploy(user.clone(), vehicle.clone(), app.clone()));
        self.check_owner(user, vehicle)?;
        let apps = self.shared.apps.read();
        let ctx = self.shared.op_ctx(&apps);
        let mut shard = self.shard_of(vehicle);
        let pushed = {
            let mut ledger = self.shared.ledger.lock();
            Self::op_push_install(&mut shard, &mut ledger, &ctx, vehicle, app)?
        };
        let record = shard.vehicles.get_mut(vehicle).expect("owner checked");
        record.desired.insert(app.clone());
        shard.note_dirty(vehicle);
        Ok(pushed)
    }

    /// Plans and pushes the installation packages of `app` (the imperative
    /// half of [`TrustedServer::deploy`], shared with
    /// [`TrustedServer::reconcile`], which bypasses the ownership check
    /// because the operation was already authorised when the manifest was
    /// set).
    fn op_push_install(
        shard: &mut Shard,
        ledger: &mut Ledger,
        ctx: &OpCtx<'_>,
        vehicle: &VehicleId,
        app: &AppId,
    ) -> Result<usize> {
        let packages = {
            let record = shard
                .vehicles
                .get(vehicle)
                .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
            Self::plan_for_record(record, ctx.apps, app)?
        };
        let record = shard
            .vehicles
            .get_mut(vehicle)
            .expect("vehicle checked by the plan");

        let mut installed = InstalledApp {
            plugins: Vec::new(),
            packages: packages.clone(),
        };
        let mut awaiting = HashSet::new();
        for (ecu, package) in &packages {
            installed.plugins.push((package.plugin.clone(), *ecu));
            awaiting.insert(package.plugin.clone());
            // Reserve the port ids this deployment consumed.
            let counter = record.next_port_id.entry(*ecu).or_insert(0);
            let highest = package
                .context
                .pic
                .ports()
                .iter()
                .map(|p| p.id.index() + 1)
                .max()
                .unwrap_or(*counter);
            *counter = (*counter).max(highest);
            Self::push_tracked(
                record,
                ctx.now,
                &ctx.policy,
                ctx.incarnation,
                *ecu,
                package.plugin.clone(),
                app.clone(),
                PendingKind::Install,
                ManagementMessage::Install(package.clone()),
            );
        }
        let count = packages.len();
        record.pending.insert(
            app.clone(),
            PendingOperation {
                kind: PendingKind::Install,
                awaiting,
                record: installed,
                failure: None,
            },
        );
        record.failed.remove(app);
        ledger.installs_pushed += count as u64;
        Ok(count)
    }

    /// Uninstalls an application from a vehicle, after checking that no other
    /// installed application depends on it.  The application also leaves the
    /// vehicle's *desired manifest*.  Returns the number of uninstallation
    /// messages pushed.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::DependentsExist`] when other installed apps
    /// require this one, and [`DynarError::NotFound`] for unknown entities.
    pub fn uninstall(&mut self, user: &UserId, vehicle: &VehicleId, app: &AppId) -> Result<usize> {
        self.journal_append(|| {
            JournalRecord::Uninstall(user.clone(), vehicle.clone(), app.clone())
        });
        self.check_owner(user, vehicle)?;
        let apps = self.shared.apps.read();
        let ctx = self.shared.op_ctx(&apps);
        let mut shard = self.shard_of(vehicle);
        let pushed = {
            let mut ledger = self.shared.ledger.lock();
            Self::op_push_uninstall(&mut shard, &mut ledger, &ctx, vehicle, app)?
        };
        let record = shard.vehicles.get_mut(vehicle).expect("owner checked");
        record.desired.remove(app);
        shard.note_dirty(vehicle);
        Ok(pushed)
    }

    /// Pushes the uninstallation messages of an installed `app` (the
    /// imperative half of [`TrustedServer::uninstall`], shared with
    /// [`TrustedServer::reconcile`]).
    fn op_push_uninstall(
        shard: &mut Shard,
        ledger: &mut Ledger,
        ctx: &OpCtx<'_>,
        vehicle: &VehicleId,
        app: &AppId,
    ) -> Result<usize> {
        let dependents: Vec<String> = {
            let record = shard
                .vehicles
                .get(vehicle)
                .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
            if !record.installed.contains_key(app) {
                return Err(DynarError::not_found("installed app", app));
            }
            record
                .installed
                .keys()
                .filter(|installed| {
                    ctx.apps
                        .get(*installed)
                        .is_some_and(|d| d.requires.contains(app))
                })
                .map(|a| a.name().to_owned())
                .collect()
        };
        if !dependents.is_empty() {
            return Err(DynarError::DependentsExist {
                plugin: app.name().to_owned(),
                dependents,
            });
        }
        let record = shard.vehicles.get_mut(vehicle).expect("checked above");
        let installed = record.installed.remove(app).expect("checked above");
        let mut awaiting = HashSet::new();
        for (plugin, ecu) in &installed.plugins {
            awaiting.insert(plugin.clone());
            Self::push_tracked(
                record,
                ctx.now,
                &ctx.policy,
                ctx.incarnation,
                *ecu,
                plugin.clone(),
                app.clone(),
                PendingKind::Uninstall,
                ManagementMessage::Uninstall {
                    plugin: plugin.clone(),
                },
            );
        }
        let count = installed.plugins.len();
        record.pending.insert(
            app.clone(),
            PendingOperation {
                kind: PendingKind::Uninstall,
                awaiting,
                record: installed,
                failure: None,
            },
        );
        // A fresh operation supersedes whatever failure the last one left.
        record.failed.remove(app);
        ledger.uninstalls_pushed += count as u64;
        Ok(count)
    }

    /// Re-installs, on a replaced ECU, every plug-in that was previously
    /// installed there (the restore operation of §3.2.2).  Returns the number
    /// of packages pushed.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles.
    pub fn restore(&mut self, vehicle: &VehicleId, ecu: EcuId) -> Result<usize> {
        self.journal_append(|| JournalRecord::Restore(vehicle.clone(), ecu));
        let incarnation = self.shared.incarnation();
        let mut shard = self.shard_of(vehicle);
        let pushed = {
            let record = shard
                .vehicles
                .get_mut(vehicle)
                .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
            let mut pushed = 0;
            let mut repush = Vec::new();
            // Sorted by app so the push order (and thus sequence-id
            // assignment) is deterministic — journal replay must reproduce it
            // exactly.
            let mut apps: Vec<&AppId> = record.installed.keys().collect();
            apps.sort();
            for app in apps {
                for (target, package) in &record.installed[app].packages {
                    if *target == ecu {
                        repush.push((*target, package.clone()));
                    }
                }
            }
            // Restore pushes are fire-and-forget (no pending operation
            // records them), but they still consume sequence ids so gateway
            // deduplication and ordering stay uniform.
            for (target, package) in repush {
                Self::queue_envelope(
                    record,
                    target,
                    incarnation,
                    ManagementMessage::Install(package),
                );
                pushed += 1;
            }
            pushed
        };
        shard.note_dirty(vehicle);
        self.shared.ledger.lock().restores += pushed as u64;
        Ok(pushed)
    }

    // ------------------------------------------------------------------
    // Reliability plane: retransmission deadlines and bounded retries
    // ------------------------------------------------------------------

    /// Replaces the retransmission policy (applies to packages pushed from
    /// now on; already-outstanding packages keep their deadlines).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.journal_append(|| JournalRecord::SetRetryPolicy(policy.clone()));
        *self.shared.policy.write() = policy;
    }

    /// The active retransmission policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.shared.policy.read().clone()
    }

    /// The retry horizon: worst-case ticks from first push to escalation.
    pub fn retry_horizon_ticks(&self) -> u64 {
        let policy = self.shared.policy.read();
        policy.ack_deadline_ticks * u64::from(policy.max_attempts)
    }

    /// Downlink packages of `vehicle` still awaiting an acknowledgement.
    pub fn outstanding_count(&self, vehicle: &VehicleId) -> usize {
        self.shard_of(vehicle)
            .vehicles
            .get(vehicle)
            .map(|v| v.outstanding.len())
            .unwrap_or(0)
    }

    /// Applications of `vehicle` with an operation still in flight.
    pub fn pending_operations(&self, vehicle: &VehicleId) -> Vec<AppId> {
        let mut apps: Vec<AppId> = self
            .shard_of(vehicle)
            .vehicles
            .get(vehicle)
            .map(|v| v.pending.keys().cloned().collect())
            .unwrap_or_default();
        apps.sort();
        apps
    }

    // ------------------------------------------------------------------
    // Lifecycle & desired-state reconciliation
    // ------------------------------------------------------------------

    /// The vehicle's desired manifest: the applications it should converge
    /// to, in sorted order.
    pub fn desired_manifest(&self, vehicle: &VehicleId) -> Vec<AppId> {
        self.shard_of(vehicle)
            .vehicles
            .get(vehicle)
            .map(|v| v.desired.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Adds `app` to the vehicle's desired manifest and reconciles
    /// immediately.  Unlike [`TrustedServer::deploy`] this is *declarative*:
    /// requesting an app that is already installed or in flight is a no-op,
    /// and a previously failed operation is simply retried.  Returns the
    /// number of packages pushed by the reconciliation.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the user does not own the vehicle
    /// or the app does not exist.
    pub fn set_desired(
        &mut self,
        user: &UserId,
        vehicle: &VehicleId,
        app: &AppId,
    ) -> Result<usize> {
        self.journal_append(|| {
            JournalRecord::SetDesired(user.clone(), vehicle.clone(), app.clone())
        });
        self.check_owner(user, vehicle)?;
        let apps = self.shared.apps.read();
        if !apps.contains_key(app) {
            return Err(DynarError::not_found("app", app));
        }
        let ctx = self.shared.op_ctx(&apps);
        let mut shard = self.shard_of(vehicle);
        let record = shard.vehicles.get_mut(vehicle).expect("owner checked");
        record.desired.insert(app.clone());
        let reconciled = {
            let mut ledger = self.shared.ledger.lock();
            Self::op_reconcile(&mut shard, &mut ledger, &ctx, vehicle)
        };
        shard.note_dirty(vehicle);
        reconciled
    }

    /// Removes `app` from the vehicle's desired manifest and reconciles
    /// immediately.  Returns the number of messages pushed.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the user does not own the vehicle.
    pub fn clear_desired(
        &mut self,
        user: &UserId,
        vehicle: &VehicleId,
        app: &AppId,
    ) -> Result<usize> {
        self.journal_append(|| {
            JournalRecord::ClearDesired(user.clone(), vehicle.clone(), app.clone())
        });
        self.check_owner(user, vehicle)?;
        let apps = self.shared.apps.read();
        let ctx = self.shared.op_ctx(&apps);
        let mut shard = self.shard_of(vehicle);
        let record = shard.vehicles.get_mut(vehicle).expect("owner checked");
        record.desired.remove(app);
        let reconciled = {
            let mut ledger = self.shared.ledger.lock();
            Self::op_reconcile(&mut shard, &mut ledger, &ctx, vehicle)
        };
        shard.note_dirty(vehicle);
        reconciled
    }

    /// Diffs the vehicle's desired manifest against its observed state and
    /// pushes the minimal downlink set closing the gap:
    ///
    /// * desired but neither installed nor in flight → install (a stale
    ///   `Failed` record from the previous attempt is cleared — failures are
    ///   retried, never terminal, because the vehicle-side management path
    ///   treats a re-issued install as a replacement);
    /// * installed but no longer desired and not in flight → uninstall
    ///   (skipped while other *installed* apps still depend on it; the next
    ///   reconciliation retries once the dependents are gone).
    ///
    /// Apps whose install cannot even be planned (incompatible hardware,
    /// missing dependency not yet installed, …) are recorded as `Failed` with
    /// the rejection reason and retried by the next reconciliation — a
    /// missing dependency resolves itself once the dependency's own install
    /// converges.
    ///
    /// Returns the number of packages pushed.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles.
    pub fn reconcile(&mut self, vehicle: &VehicleId) -> Result<usize> {
        self.journal_append(|| JournalRecord::Reconcile(vehicle.clone()));
        let apps = self.shared.apps.read();
        let ctx = self.shared.op_ctx(&apps);
        let mut shard = self.shard_of(vehicle);
        let reconciled = {
            let mut ledger = self.shared.ledger.lock();
            Self::op_reconcile(&mut shard, &mut ledger, &ctx, vehicle)
        };
        shard.note_dirty(vehicle);
        reconciled
    }

    /// [`TrustedServer::reconcile`] against an already-locked shard (shared
    /// with the mutators that already journaled their own triggering record).
    fn op_reconcile(
        shard: &mut Shard,
        ledger: &mut Ledger,
        ctx: &OpCtx<'_>,
        vehicle: &VehicleId,
    ) -> Result<usize> {
        let (to_install, to_uninstall) = {
            let record = shard
                .vehicles
                .get(vehicle)
                .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
            let to_install: Vec<AppId> = record
                .desired
                .iter()
                .filter(|app| {
                    !record.installed.contains_key(*app) && !record.pending.contains_key(*app)
                })
                .cloned()
                .collect();
            let mut to_uninstall: Vec<AppId> = record
                .installed
                .keys()
                .filter(|app| !record.desired.contains(*app) && !record.pending.contains_key(*app))
                .filter(|app| {
                    // Keep dependency order: a still-depended-on app waits
                    // for the next round, after its dependents are removed.
                    !record.installed.keys().any(|other| {
                        ctx.apps
                            .get(other)
                            .is_some_and(|d| d.requires.contains(*app))
                    })
                })
                .cloned()
                .collect();
            // `installed` is a HashMap: sort so the push order (and thus
            // sequence-id assignment) is deterministic for journal replay.
            to_uninstall.sort();
            (to_install, to_uninstall)
        };
        let mut pushed = 0;
        for app in &to_install {
            if let Some(record) = shard.vehicles.get_mut(vehicle) {
                record.failed.remove(app);
            }
            match Self::op_push_install(shard, ledger, ctx, vehicle, app) {
                Ok(count) => pushed += count,
                Err(err) => {
                    // Not pushable right now (e.g. a dependency that has not
                    // converged yet): surface the reason and let the next
                    // reconciliation retry.
                    let record = shard.vehicles.get_mut(vehicle).expect("checked above");
                    record.failed.insert(app.clone(), err.to_string());
                }
            }
        }
        for app in &to_uninstall {
            pushed += Self::op_push_uninstall(shard, ledger, ctx, vehicle, app)?;
        }
        Ok(pushed)
    }

    /// Parks a vehicle whose transport endpoint is known to be gone (reboot
    /// in progress, dropped-destination feedback): downlinks stay queued and
    /// retransmission deadlines freeze, so the retry budget is not burned
    /// against a dead link.
    pub fn mark_offline(&mut self, vehicle: &VehicleId) {
        self.journal_append(|| JournalRecord::MarkOffline(vehicle.clone()));
        if let Some(record) = self.shard_of(vehicle).vehicles.get_mut(vehicle) {
            record.online = false;
        }
    }

    /// Returns `true` if the vehicle is registered and not parked offline.
    pub fn is_online(&self, vehicle: &VehicleId) -> bool {
        self.shard_of(vehicle)
            .vehicles
            .get(vehicle)
            .is_some_and(|v| v.online)
    }

    /// The vehicle boot epoch the server currently stamps into downlinks.
    pub fn vehicle_boot_epoch(&self, vehicle: &VehicleId) -> Option<u32> {
        self.shard_of(vehicle)
            .vehicles
            .get(vehicle)
            .map(|v| v.boot_epoch)
    }

    /// Brings a parked vehicle back: outstanding deadlines are re-armed
    /// relative to the current tick (the attempts already made keep
    /// counting), and the vehicle is reconciled against its desired
    /// manifest.  A `boot_epoch` newer than the last known one means the
    /// vehicle *rebooted* — its ECM lost all volatile state — so everything
    /// still outstanding or observed under the old epoch is discarded and
    /// the reconciliation re-issues what the manifest still wants under the
    /// new epoch.
    pub fn mark_online(&mut self, vehicle: &VehicleId, boot_epoch: u32) {
        self.journal_append(|| JournalRecord::MarkOnline(vehicle.clone(), boot_epoch));
        let apps = self.shared.apps.read();
        let ctx = self.shared.op_ctx(&apps);
        let mut shard = self.shard_of(vehicle);
        let mut ledger = self.shared.ledger.lock();
        if let Some(record) = shard.vehicles.get_mut(vehicle) {
            Self::bring_online(record, &mut ledger, ctx.now, &ctx.policy, boot_epoch);
        }
        let _ = Self::op_reconcile(&mut shard, &mut ledger, &ctx, vehicle);
        drop(ledger);
        shard.note_dirty(vehicle);
    }

    /// Declares a vehicle permanently unreachable (its endpoint was removed,
    /// not rebooted): every outstanding operation fails *immediately* with
    /// the distinct [`DynarError::VehicleUnreachable`] — no retry budget is
    /// burned, and the failure reason is not the misleading
    /// "retry budget exhausted".  Returns the escalated failures.
    pub fn mark_unreachable(&mut self, vehicle: &VehicleId) -> Vec<RetryFailure> {
        self.journal_append(|| JournalRecord::MarkUnreachable(vehicle.clone()));
        let mut shard = self.shard_of(vehicle);
        let mut ledger = self.shared.ledger.lock();
        let ledger = &mut *ledger;
        let Some(record) = shard.vehicles.get_mut(vehicle) else {
            return Vec::new();
        };
        record.online = false;
        record.downlink.clear();
        record.deadlines.clear();
        let mut failures = Vec::new();
        for entry in std::mem::take(&mut record.outstanding) {
            let error = DynarError::VehicleUnreachable {
                vehicle: vehicle.to_string(),
            };
            ledger.unreachable_failures += 1;
            Self::fail_awaiting(record, ledger, &entry.app, &entry.plugin, &error);
            failures.push(RetryFailure {
                vehicle: vehicle.clone(),
                app: entry.app,
                plugin: entry.plugin,
                error,
            });
        }
        // Operations whose outstanding entries were already settled but that
        // still await acknowledgements can never complete either.  Sorted:
        // `pending` is a HashMap, and journal replay must resolve the stuck
        // operations in a reproducible order.
        let mut stuck: Vec<AppId> = record.pending.keys().cloned().collect();
        stuck.sort();
        for app in stuck {
            let pending = record.pending.get_mut(&app).expect("key just listed");
            pending.failure.get_or_insert_with(|| {
                DynarError::VehicleUnreachable {
                    vehicle: vehicle.to_string(),
                }
                .to_string()
            });
            pending.awaiting.clear();
            Self::resolve_if_complete(record, ledger, &app);
        }
        failures
    }

    /// Queues a [`ManagementMessage::StateReportRequest`] towards the
    /// vehicle's ECM, asking for its ground-truth plug-in inventory (answered
    /// with a state report that the resync path consumes).  The request is
    /// fire-and-forget: callers poll and re-request if the answer is lost.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles and
    /// [`DynarError::InvalidConfiguration`] if the vehicle's system software
    /// declares no ECM.
    pub fn request_state_report(&mut self, vehicle: &VehicleId) -> Result<()> {
        self.journal_append(|| JournalRecord::RequestStateReport(vehicle.clone()));
        let incarnation = self.shared.incarnation();
        let mut shard = self.shard_of(vehicle);
        let result = Self::op_request_state_report(&mut shard, incarnation, vehicle);
        shard.note_dirty(vehicle);
        result
    }

    /// [`TrustedServer::request_state_report`] without the journal hook
    /// (shared with the resync and incarnation paths, whose own records
    /// already cover the request).
    fn op_request_state_report(
        shard: &mut Shard,
        incarnation: u32,
        vehicle: &VehicleId,
    ) -> Result<()> {
        let record = shard
            .vehicles
            .get_mut(vehicle)
            .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
        let ecm = record.system.ecm_ecu().ok_or_else(|| {
            DynarError::invalid_config(format!("vehicle {vehicle} declares no ECM SW-C"))
        })?;
        Self::queue_envelope(
            record,
            ecm,
            incarnation,
            ManagementMessage::StateReportRequest,
        );
        record.awaiting_report = true;
        Ok(())
    }

    /// Resynchronises the server's observed state from a vehicle state
    /// report — the ground truth of what is actually installed:
    ///
    /// * a report with a **newer boot epoch** first discards everything tied
    ///   to the old epoch (outstanding packages, parked downlinks, pending
    ///   operations *and* the observed installed set: the ECM's volatile
    ///   state is gone, so prior observations are void);
    /// * observed apps whose plug-ins the report does not confirm are
    ///   dropped (the manifest will re-install the desired ones);
    /// * reported plug-ins that no desired, observed or in-flight app
    ///   accounts for are *orphans* — a tracked uninstall is pushed for each
    ///   so the vehicle converges down to the manifest too;
    /// * finally the vehicle is reconciled.
    ///
    /// Stale reports from before the last known epoch are ignored.
    fn op_resync(
        shard: &mut Shard,
        ledger: &mut Ledger,
        ctx: &OpCtx<'_>,
        vehicle: &VehicleId,
        epoch: u32,
        plugins: &[(PluginId, AppId, EcuId)],
    ) {
        let Some(record) = shard.vehicles.get_mut(vehicle) else {
            return;
        };
        if epoch < record.boot_epoch {
            return;
        }
        ledger.resyncs += 1;
        let rebooted = Self::bring_online(record, ledger, ctx.now, &ctx.policy, epoch);
        // A report answering our own request is *solicited*; anything else —
        // in particular the first report after a reboot — is the gateway
        // announcing itself.  An epoch bump voids any older request.
        let solicited = record.awaiting_report && !rebooted;
        record.awaiting_report = false;
        let mut orphan_pushes = 0usize;
        let present: HashSet<&PluginId> = plugins.iter().map(|(plugin, _, _)| plugin).collect();
        record
            .installed
            .retain(|_, installed| installed.plugins.iter().all(|(p, _)| present.contains(p)));
        for (plugin, app, ecu) in plugins {
            let accounted = record.desired.contains(app)
                || record
                    .installed
                    .values()
                    .any(|r| r.plugins.iter().any(|(p, _)| p == plugin))
                || record
                    .pending
                    .values()
                    .any(|p| p.record.plugins.iter().any(|(q, _)| q == plugin))
                // An orphan uninstall already in flight (reports can repeat
                // while it travels) must not be pushed again.
                || record.outstanding.iter().any(|o| &o.plugin == plugin);
            if !accounted {
                Self::push_tracked(
                    record,
                    ctx.now,
                    &ctx.policy,
                    ctx.incarnation,
                    *ecu,
                    plugin.clone(),
                    app.clone(),
                    PendingKind::Uninstall,
                    ManagementMessage::Uninstall {
                        plugin: plugin.clone(),
                    },
                );
                orphan_pushes += 1;
            }
        }
        ledger.orphan_uninstalls += orphan_pushes as u64;
        let reconciled = Self::op_reconcile(shard, ledger, ctx, vehicle).unwrap_or(0);
        // An announcing gateway re-announces until a downlink of its own
        // epoch proves the server resynced.  When the resync itself produced
        // no downlink (empty manifest, everything already converged), answer
        // with a state-report request: it confirms the epoch, and its reply
        // arrives flagged as solicited so this cannot ping-pong.
        if !solicited && orphan_pushes == 0 && reconciled == 0 {
            let _ = Self::op_request_state_report(shard, ctx.incarnation, vehicle);
        }
    }

    /// Un-parks a vehicle record, handling the epoch transition: an epoch
    /// bump voids everything issued under the old epoch (the rebooted
    /// gateway would reject it anyway); a same-epoch return re-arms the
    /// frozen deadlines relative to `now`.  Returns `true` if the vehicle
    /// rebooted.
    fn bring_online(
        record: &mut VehicleRecord,
        ledger: &mut Ledger,
        now: Tick,
        policy: &RetryPolicy,
        boot_epoch: u32,
    ) -> bool {
        let was_online = record.online;
        record.online = true;
        if boot_epoch > record.boot_epoch {
            record.boot_epoch = boot_epoch;
            record.outstanding.clear();
            record.deadlines.clear();
            record.downlink.clear();
            // Aborted, not failed: the manifest still records the intent and
            // the post-resync reconciliation re-issues it under the new
            // epoch.  Voided operations are neither completed nor failed —
            // their old-epoch outcome can never arrive.
            ledger.operations_voided += record.pending.len() as u64;
            record.pending.clear();
            // The ECM's volatile state died with the old epoch: nothing can
            // be assumed installed until acknowledged (or reported) again —
            // and old-epoch failure outcomes are void with it (a non-desired
            // app whose uninstall retry-exhausted is simply gone now; a
            // desired one is re-driven by the reconciliation).
            record.installed.clear();
            record.failed.clear();
            true
        } else {
            // Re-arm frozen deadlines only when the vehicle was actually
            // parked: a same-epoch state report from an *online* vehicle (a
            // routine poll answer, a re-announcement whose confirmation was
            // lost) must not keep postponing the retransmission of packages
            // whose deadlines are legitimately running.
            if !was_online {
                record.deadlines.clear();
                for entry in &mut record.outstanding {
                    entry.deadline = now.advance(policy.ack_deadline_ticks.max(1));
                    record.deadlines.push(Reverse((entry.deadline, entry.seq)));
                }
            }
            false
        }
    }

    /// Journals the tick record and advances the shared clock — the serial
    /// prologue of a (possibly parallel) tick.  The `Tick` journal record is
    /// written *before* any shard runs, so replay performs the same full
    /// sweep at the same point in the record stream.
    pub fn begin_tick(&mut self, now: Tick) {
        self.journal_append(|| JournalRecord::Tick(now));
        self.shared.now.store(now.as_u64(), Ordering::Relaxed);
    }

    /// Advances the reliability plane to `now`: every outstanding package
    /// whose deadline lapsed is either retransmitted (same sequence id) or —
    /// once its attempt budget is spent — escalated into a typed
    /// [`DynarError::RetryExhausted`], failing the owning operation.  The
    /// escalations are returned so harnesses can log or assert on them.
    ///
    /// Deadlines are tracked in a per-vehicle min-heap with lazy
    /// invalidation: a vehicle with nothing due costs a single peek, so a
    /// quiescent fleet tick is O(1) in the number of outstanding packages.
    ///
    /// This is the serial form; a parallel driver calls
    /// [`TrustedServer::begin_tick`] and fans out over
    /// [`TrustedServer::shard_handles`] instead.
    pub fn tick(&mut self, now: Tick) -> Vec<RetryFailure> {
        self.begin_tick(now);
        let policy = self.shared.policy.read().clone();
        let mut failures = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            let mut ledger = self.shared.ledger.lock();
            Self::op_tick(&mut shard, &mut ledger, &policy, now, &mut failures);
        }
        failures
    }

    /// The earliest retransmission deadline over every online vehicle, if
    /// any — the timer a tick-free driver (the actor runtime) arms instead
    /// of sweeping [`TrustedServer::tick`] every quantum: it sleeps until
    /// this tick or the next uplink, whichever comes first.
    ///
    /// The value may be *early* (heap entries are lazily invalidated, so a
    /// settled package can still surface its stale deadline) but never late;
    /// a spurious early wake-up just runs a cheap quiescent sweep.  Offline
    /// vehicles are skipped — their deadlines are frozen by contract.
    pub fn next_deadline(&self) -> Option<Tick> {
        let mut earliest: Option<Tick> = None;
        for shard in &self.shards {
            let shard = shard.lock();
            for record in shard.vehicles.values() {
                if !record.online || record.outstanding.is_empty() {
                    continue;
                }
                if let Some(&Reverse((deadline, _))) = record.deadlines.peek() {
                    if earliest.is_none_or(|e| deadline < e) {
                        earliest = Some(deadline);
                    }
                }
            }
        }
        earliest
    }

    /// The per-shard tick sweep (shared by the serial [`TrustedServer::tick`]
    /// and [`ShardHandle::tick`]).
    fn op_tick(
        shard: &mut Shard,
        ledger: &mut Ledger,
        policy: &RetryPolicy,
        now: Tick,
        failures: &mut Vec<RetryFailure>,
    ) {
        let Shard {
            vehicles, dirty, ..
        } = shard;
        for (vehicle_id, record) in vehicles.iter_mut() {
            if !record.online {
                // Parked: an offline vehicle's deadlines freeze — the link is
                // known dead, so retransmitting would only burn the retry
                // budget and escalate misleading failures.  `mark_online`
                // re-arms every deadline relative to its own `now`.
                continue;
            }
            if record.outstanding.is_empty() {
                // Every entry settled: drop whatever stale heap entries the
                // acknowledgements left behind.
                record.deadlines.clear();
                continue;
            }
            while let Some(&Reverse((deadline, seq))) = record.deadlines.peek() {
                if deadline > now {
                    break;
                }
                record.deadlines.pop();
                // Lazy invalidation: the entry may have been settled by an
                // acknowledgement, or rescheduled by an earlier
                // retransmission (its live deadline then differs).
                let Some(position) = record.outstanding.iter().position(|o| o.seq == seq) else {
                    continue;
                };
                if record.outstanding[position].deadline != deadline {
                    continue;
                }
                if record.outstanding[position].attempts >= policy.max_attempts {
                    let entry = record.outstanding.remove(position);
                    let error = DynarError::RetryExhausted {
                        operation: format!(
                            "delivery of management message seq {} for plug-in {} on {}",
                            entry.seq, entry.plugin, entry.ecu
                        ),
                        attempts: entry.attempts,
                    };
                    // Resolving the operation may settle further entries of
                    // the same app; their heap entries die lazily.
                    ledger.retries_exhausted += 1;
                    Self::fail_awaiting(record, ledger, &entry.app, &entry.plugin, &error);
                    failures.push(RetryFailure {
                        vehicle: vehicle_id.clone(),
                        app: entry.app,
                        plugin: entry.plugin,
                        error,
                    });
                } else {
                    let entry = &mut record.outstanding[position];
                    entry.attempts += 1;
                    // Re-arm at least one tick ahead: a zero ack deadline
                    // must retransmit once per tick (as the per-tick scan it
                    // replaced did), not spin the heap loop through the whole
                    // attempt budget within this tick.
                    entry.deadline = now.advance(policy.ack_deadline_ticks.max(1));
                    ledger.retransmissions += 1;
                    record.downlink.push(entry.payload.clone());
                    record.deadlines.push(Reverse((entry.deadline, seq)));
                }
            }
            // Retransmissions queued above make the vehicle pollable again.
            if !record.in_dirty && !record.downlink.is_empty() {
                record.in_dirty = true;
                dirty.push(vehicle_id.clone());
            }
        }
    }

    /// Assigns the next sequence id, encodes the envelope and queues it on
    /// the vehicle's downlink (shared by tracked pushes and fire-and-forget
    /// restore pushes).
    fn queue_envelope(
        record: &mut VehicleRecord,
        ecu: EcuId,
        incarnation: u32,
        message: ManagementMessage,
    ) -> (u64, Payload) {
        let seq = record.next_seq;
        record.next_seq += 1;
        let payload: Payload =
            DownlinkEnvelope::new(ecu, seq, record.boot_epoch, incarnation, message)
                .to_bytes()
                .into();
        record.downlink.push(payload.clone());
        (seq, payload)
    }

    /// Queues a tracked downlink package: assigns the next sequence id,
    /// encodes the envelope and records the outstanding-acknowledgement
    /// state used by [`TrustedServer::tick`].
    #[allow(clippy::too_many_arguments)]
    fn push_tracked(
        record: &mut VehicleRecord,
        now: Tick,
        policy: &RetryPolicy,
        incarnation: u32,
        ecu: EcuId,
        plugin: PluginId,
        app: AppId,
        kind: PendingKind,
        message: ManagementMessage,
    ) {
        let (seq, payload) = Self::queue_envelope(record, ecu, incarnation, message);
        let deadline = now.advance(policy.ack_deadline_ticks);
        record.outstanding.push(OutstandingDownlink {
            seq,
            ecu,
            plugin,
            app,
            kind,
            payload,
            attempts: 1,
            deadline,
        });
        record.deadlines.push(Reverse((deadline, seq)));
    }

    /// Drains the downlink messages queued for a vehicle (consumed by the
    /// simulation harness, which feeds them to the vehicle's ECM endpoint).
    /// The returned payloads share their buffers with the retransmission
    /// cache — nothing is copied.  An offline vehicle's queue stays parked:
    /// nothing is drained until [`TrustedServer::mark_online`] (or a state
    /// report) brings the vehicle back.
    pub fn poll_downlink(&mut self, vehicle: &VehicleId) -> Vec<Payload> {
        let drained = self
            .shard_of(vehicle)
            .vehicles
            .get_mut(vehicle)
            .filter(|v| v.online)
            .map(|v| std::mem::take(&mut v.downlink))
            .unwrap_or_default();
        // Journaled only when something actually left the queue: the fleet
        // polls every vehicle every tick, and an empty drain is a no-op that
        // would otherwise dominate the journal.  (The vehicle may still sit
        // in its shard's dirty set; the next dirty drain pops it, sees the
        // empty queue and skips it.)
        if !drained.is_empty() {
            self.journal_append(|| JournalRecord::PollDownlink(vehicle.clone()));
        }
        drained
    }

    /// Drains the downlink queues of every *dirty* vehicle (one with queued
    /// payloads), invoking `f` per payload in sorted-VIN order, and returns
    /// the number of vehicles drained.  A quiescent fleet costs O(shards),
    /// independent of the vehicle count — this is the serial form of
    /// [`ShardHandle::poll_downlink_dirty`].
    pub fn poll_downlink_dirty(&mut self, mut f: impl FnMut(&VehicleId, Payload)) -> u64 {
        let journaling = self.journal.is_some();
        let mut polls = 0;
        for shard in &self.shards {
            polls += Self::op_poll_dirty(&mut shard.lock(), journaling, &mut f);
        }
        self.merge_shard_journals();
        polls
    }

    /// Drains one shard's dirty set.  The per-vehicle `PollDownlink` journal
    /// records land in the shard buffer (in drain order), exactly as the
    /// serial [`TrustedServer::poll_downlink`] would have journaled them.
    fn op_poll_dirty(
        shard: &mut Shard,
        journaling: bool,
        f: &mut dyn FnMut(&VehicleId, Payload),
    ) -> u64 {
        if shard.dirty.is_empty() {
            return 0;
        }
        let mut dirty = std::mem::take(&mut shard.dirty);
        // Sorted VIN order: the dirty set fills in operation order (which is
        // nondeterministic across HashMap sweeps), but delivery order — and
        // the journal record order derived from it — must be reproducible.
        dirty.sort();
        let mut polls = 0;
        for vehicle in dirty.drain(..) {
            let Some(record) = shard.vehicles.get_mut(&vehicle) else {
                continue;
            };
            record.in_dirty = false;
            // Parked queues stay parked (the entry re-arms via `note_dirty`
            // when the vehicle returns); an already-drained queue is a no-op.
            if !record.online || record.downlink.is_empty() {
                continue;
            }
            polls += 1;
            for payload in record.downlink.drain(..) {
                f(&vehicle, payload);
            }
            if journaling {
                shard.journal_buf.push(JournalRecord::PollDownlink(vehicle));
            }
        }
        // Hand the (now empty) allocation back — the steady state reuses it.
        shard.dirty = dirty;
        polls
    }

    /// Processes an uplink message from a vehicle: an acknowledgement updates
    /// the installed-app records; a [`ManagementMessage::StateReport`]
    /// resynchronises the server's observed state from the vehicle's ground
    /// truth.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles and
    /// [`DynarError::ProtocolViolation`] for malformed or unexpected uplink
    /// payloads.
    pub fn process_uplink(&mut self, vehicle: &VehicleId, payload: &[u8]) -> Result<()> {
        self.journal_append(|| JournalRecord::ProcessUplink(vehicle.clone(), payload.to_vec()));
        let apps = self.shared.apps.read();
        let ctx = self.shared.op_ctx(&apps);
        let mut shard = self.shard_of(vehicle);
        let mut ledger = self.shared.ledger.lock();
        Self::op_process_uplink(&mut shard, &mut ledger, &ctx, vehicle, payload)
    }

    /// The shard-local uplink path (shared by the serial
    /// [`TrustedServer::process_uplink`] and [`ShardHandle::process_uplink`]).
    fn op_process_uplink(
        shard: &mut Shard,
        ledger: &mut Ledger,
        ctx: &OpCtx<'_>,
        vehicle: &VehicleId,
        payload: &[u8],
    ) -> Result<()> {
        if !shard.vehicles.contains_key(vehicle) {
            return Err(DynarError::not_found("vehicle", vehicle));
        }
        let result = match ManagementMessage::from_bytes(payload)? {
            ManagementMessage::Ack(ack) => {
                let record = shard.vehicles.get_mut(vehicle).expect("checked above");
                Self::apply_ack(record, ledger, &ack);
                Ok(())
            }
            ManagementMessage::StateReport {
                boot_epoch,
                plugins,
            } => {
                Self::op_resync(shard, ledger, ctx, vehicle, boot_epoch, &plugins);
                Ok(())
            }
            _ => Err(DynarError::ProtocolViolation(
                "uplink message is neither an acknowledgement nor a state report".into(),
            )),
        };
        // Resyncs and ack-triggered reconciliations queue downlinks.
        shard.note_dirty(vehicle);
        result
    }

    /// Applies one acknowledgement: settles the outstanding retransmission
    /// state and the pending operation it belongs to.
    ///
    /// Settlement is *outcome-matched* — an `Installed` ack only settles
    /// Install-kind state (and `Uninstalled` only Uninstall-kind), so a
    /// stale success ack replayed by the gateway's dedup window cannot
    /// silence a later operation's retransmissions.  `Failed` acks settle
    /// either kind; a stale replayed `Failed` ack arriving in the short
    /// in-flight window after a re-deploy of the same plug-in can therefore
    /// fail the fresh operation early — acks carry no sequence id, so the
    /// two are indistinguishable; the operation still resolves typed-failed
    /// and can be retried.
    fn apply_ack(record: &mut VehicleRecord, ledger: &mut Ledger, ack: &Ack) {
        let outcome_matches = |kind: &PendingKind, status: &AckStatus| {
            matches!(
                (kind, status),
                (PendingKind::Install, AckStatus::Installed)
                    | (PendingKind::Uninstall, AckStatus::Uninstalled)
                    | (_, AckStatus::Failed(_))
            )
        };

        // Failure acks generated by the ECM itself (e.g. "no route to ECU")
        // may carry an empty app id.  Settle by plug-in through the
        // outstanding entries instead, resolving each entry's own app — the
        // pending operation must be updated too, or it would hang with its
        // retransmission state gone.
        if ack.app.name().is_empty() {
            let mut settled = Vec::new();
            record.outstanding.retain(|o| {
                if o.plugin == ack.plugin && outcome_matches(&o.kind, &ack.status) {
                    settled.push((o.app.clone(), o.plugin.clone()));
                    false
                } else {
                    true
                }
            });
            for (app, plugin) in settled {
                if let Some(pending) = record.pending.get_mut(&app) {
                    pending.awaiting.remove(&plugin);
                    if let AckStatus::Failed(reason) = &ack.status {
                        pending.failure = Some(format!("{plugin}: {reason}"));
                    }
                }
                Self::resolve_if_complete(record, ledger, &app);
            }
            return;
        }

        let app = AppId::new(ack.app.name());
        record.outstanding.retain(|o| {
            o.plugin != ack.plugin || o.app != app || !outcome_matches(&o.kind, &ack.status)
        });
        let Some(pending) = record.pending.get_mut(&app) else {
            return;
        };
        match &ack.status {
            AckStatus::Failed(reason) => {
                pending.awaiting.remove(&ack.plugin);
                pending.failure = Some(format!("{}: {reason}", ack.plugin));
            }
            status if outcome_matches(&pending.kind, status) => {
                pending.awaiting.remove(&ack.plugin);
            }
            _ => {}
        }
        Self::resolve_if_complete(record, ledger, &app);
    }

    /// Finalises a pending operation once no acknowledgement is awaited any
    /// more, applying the install/uninstall bookkeeping (shared by the ack
    /// path and the retry-exhaustion path).
    fn resolve_if_complete(record: &mut VehicleRecord, ledger: &mut Ledger, app: &AppId) {
        let Some(pending) = record.pending.get(app) else {
            return;
        };
        if !pending.awaiting.is_empty() {
            return;
        }
        let done = record.pending.remove(app).expect("entry present");
        // Whatever the outcome, abandon retransmissions tied to the settled
        // operation (relevant when a retry exhaustion resolves it).
        record.outstanding.retain(|o| &o.app != app);
        match (&done.kind, &done.failure) {
            (PendingKind::Install, None) => {
                ledger.installs_completed += 1;
                record.installed.insert(app.clone(), done.record);
            }
            (PendingKind::Install, Some(reason)) => {
                ledger.operations_failed += 1;
                record.failed.insert(app.clone(), reason.clone());
            }
            (PendingKind::Uninstall, None) => {
                ledger.uninstalls_completed += 1;
            }
            (PendingKind::Uninstall, Some(reason)) => {
                // Keep the record: the app is still (partially) present.
                ledger.operations_failed += 1;
                record.failed.insert(app.clone(), reason.clone());
                record.installed.insert(app.clone(), done.record);
            }
        }
    }

    /// Marks one awaited plug-in of `app` as failed with `error` (used when
    /// its retransmission budget is exhausted) and resolves the operation if
    /// nothing else is awaited.
    fn fail_awaiting(
        record: &mut VehicleRecord,
        ledger: &mut Ledger,
        app: &AppId,
        plugin: &PluginId,
        error: &DynarError,
    ) {
        if let Some(pending) = record.pending.get_mut(app) {
            pending.awaiting.remove(plugin);
            pending.failure = Some(format!("{plugin}: {error}"));
        }
        Self::resolve_if_complete(record, ledger, app);
    }

    // ------------------------------------------------------------------
    // Durability plane: journal, snapshots, replay, incarnations
    // ------------------------------------------------------------------

    /// The server incarnation id currently stamped into downlink envelopes.
    pub fn incarnation(&self) -> u32 {
        self.shared.incarnation()
    }

    /// A copy of the operation-accounting ledger (see [`Ledger`]).
    pub fn ledger(&self) -> Ledger {
        self.shared.ledger.lock().clone()
    }

    /// Turns the write-ahead journal on: every mutating API call from now on
    /// is recorded *before* it runs, and every `compaction_interval` records
    /// the journal is compacted into a single full-state snapshot frame.
    /// The journal is seeded with a snapshot of the current state, so
    /// [`TrustedServer::replay`] works no matter when journaling began.
    pub fn enable_journal(&mut self, compaction_interval: u32) {
        let mut journal = Journal::new(compaction_interval);
        journal.compact(self.snapshot_value());
        self.journal = Some(journal);
    }

    /// [`TrustedServer::enable_journal`] mirrored to a file at `path` with
    /// `fsync` batched every `fsync_interval` appends: the in-memory journal
    /// stays the replay source of truth, and the file is what survives a
    /// process crash.  Recover with [`TrustedServer::replay_recover`] over
    /// the file's bytes — a torn tail frame (crash mid-write) is detected by
    /// its checksum and truncated, not fatal.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Io`] when the file cannot be created or the
    /// seed snapshot cannot be written.
    pub fn enable_journal_file(
        &mut self,
        path: &std::path::Path,
        compaction_interval: u32,
        fsync_interval: u32,
    ) -> Result<()> {
        let mut journal = Journal::new(compaction_interval);
        journal.compact(self.snapshot_value());
        journal.attach_file_sink(path, fsync_interval)?;
        self.journal = Some(journal);
        Ok(())
    }

    /// The journal's framed bytes (what a crash would leave behind; feed
    /// them to [`TrustedServer::replay`]), `None` while journaling is off.
    pub fn journal_bytes(&self) -> Option<&[u8]> {
        self.journal.as_ref().map(Journal::bytes)
    }

    /// Appends one record to the journal (no-op while journaling is off),
    /// compacting first when the interval lapsed.  Compaction snapshots the
    /// state *before* the new record is appended — the snapshot captures
    /// exactly what every previously journaled record replays to, so replay
    /// is always `snapshot ⊕ remaining records`, in order.
    ///
    /// Must be called before any shard or ledger guard is taken: the
    /// compaction snapshot locks the whole plane.
    fn journal_append(&mut self, record: impl FnOnce() -> JournalRecord) {
        if self.journal.is_none() {
            return;
        }
        if self.journal.as_ref().expect("checked").due_for_compaction() {
            let snapshot = self.snapshot_value();
            self.journal.as_mut().expect("checked").compact(snapshot);
        }
        let record = record();
        self.journal.as_mut().expect("checked").append(&record);
    }

    /// Hands out one concurrently usable [`ShardHandle`] per shard, for a
    /// parallel per-vehicle phase between [`TrustedServer::begin_tick`] and
    /// [`TrustedServer::merge_shard_journals`].  The handles buffer their
    /// journal records in their shards; nothing touches the journal itself,
    /// so the borrow of `self` ends before the fan-out.
    pub fn shard_handles(&self) -> Vec<ShardHandle> {
        let journaling = self.journal.is_some();
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardHandle {
                index,
                shard: Arc::clone(shard),
                shared: Arc::clone(&self.shared),
                journaling,
            })
            .collect()
    }

    /// Drains every shard's buffered journal records into the journal, in
    /// deterministic order: shard id first, per-shard sequence second.
    /// Replay equivalence holds because a vehicle's records all live in its
    /// own shard's buffer (per-vehicle order is preserved exactly) and
    /// records of different vehicles commute.  No-op (beyond clearing the
    /// buffers) while journaling is off.
    pub fn merge_shard_journals(&mut self) {
        if self.journal.is_none() {
            for shard in &self.shards {
                shard.lock().journal_buf.clear();
            }
            return;
        }
        let mut merged = Vec::new();
        for shard in &self.shards {
            merged.append(&mut shard.lock().journal_buf);
        }
        let journal = self.journal.as_mut().expect("checked");
        for record in &merged {
            journal.append(record);
        }
        // Compact only after the whole merge: a mid-merge snapshot would
        // capture later shards' effects ahead of their records.
        if self.journal.as_ref().expect("checked").due_for_compaction() {
            let snapshot = self.snapshot_value();
            self.journal.as_mut().expect("checked").compact(snapshot);
        }
    }

    /// Rebuilds a single-shard server from journal bytes: decodes each frame
    /// and applies it through the same public API the live server ran.  The
    /// result is byte-identical to the journaling server at its last append
    /// ([`TrustedServer::snapshot_bytes`] is the comparison form).  The
    /// rebuilt server has journaling off — re-enable it (and start a new
    /// incarnation with [`TrustedServer::begin_incarnation`]) to resume.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for truncated, corrupted or
    /// malformed journal bytes.
    pub fn replay(bytes: &[u8]) -> Result<TrustedServer> {
        Self::replay_with_shards(bytes, 1)
    }

    /// [`TrustedServer::replay`] into a `shards`-way sharded server.  The
    /// journal carries no shard count — the layout is the reader's choice,
    /// and the replayed state is byte-identical regardless.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for truncated, corrupted or
    /// malformed journal bytes.
    pub fn replay_with_shards(bytes: &[u8], shards: usize) -> Result<TrustedServer> {
        let mut server = TrustedServer::with_shards(shards);
        let mut reader = FrameReader::new(bytes);
        while let Some(frame) = reader.next_frame()? {
            let record = JournalRecord::from_bytes(frame)?;
            server.apply_record(record)?;
        }
        Ok(server)
    }

    /// Crash recovery from a journal *file* image: replays every intact
    /// frame and treats the first torn or corrupted frame as the end of the
    /// log — exactly what a crash mid-append leaves behind under the
    /// checksummed frame format.  Returns the recovered server and the
    /// length of the clean prefix (the offset a resuming writer should
    /// truncate the file to).
    ///
    /// A *decodable frame with malformed contents* is still fatal: the
    /// checksum proves those bytes were written intact, so the corruption is
    /// real, not a torn tail.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] when an intact frame holds
    /// a malformed record.
    pub fn replay_recover(bytes: &[u8], shards: usize) -> Result<(TrustedServer, usize)> {
        let mut server = TrustedServer::with_shards(shards);
        let mut reader = FrameReader::new(bytes);
        let mut clean = 0usize;
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    let record = JournalRecord::from_bytes(frame)?;
                    server.apply_record(record)?;
                    clean = reader.offset();
                }
                Ok(None) => break,
                // Torn tail: the remaining bytes never made it to disk as a
                // whole frame.  The clean prefix is the recovered log.
                Err(_) => break,
            }
        }
        Ok((server, clean))
    }

    /// Applies one journaled record.  Command *failures* are deliberately
    /// swallowed: the live call failed identically and changed nothing, so
    /// the failure replays for free.  (The replaying server has
    /// `journal: None`, so nothing is re-journaled here.)
    fn apply_record(&mut self, record: JournalRecord) -> Result<()> {
        match record {
            JournalRecord::Snapshot(state) => {
                *self = TrustedServer::from_snapshot_value(&state, self.shards.len())?;
            }
            JournalRecord::CreateUser(user) => {
                let _ = self.create_user(user);
            }
            JournalRecord::RegisterVehicle(vehicle, hw, system) => {
                let _ = self.register_vehicle(vehicle, hw, system);
            }
            JournalRecord::BindVehicle(user, vehicle) => {
                let _ = self.bind_vehicle(&user, &vehicle);
            }
            JournalRecord::UploadApp(app) => {
                let _ = self.upload_app(app);
            }
            JournalRecord::SetRetryPolicy(policy) => self.set_retry_policy(policy),
            JournalRecord::Deploy(user, vehicle, app) => {
                let _ = self.deploy(&user, &vehicle, &app);
            }
            JournalRecord::Uninstall(user, vehicle, app) => {
                let _ = self.uninstall(&user, &vehicle, &app);
            }
            JournalRecord::Restore(vehicle, ecu) => {
                let _ = self.restore(&vehicle, ecu);
            }
            JournalRecord::SetDesired(user, vehicle, app) => {
                let _ = self.set_desired(&user, &vehicle, &app);
            }
            JournalRecord::ClearDesired(user, vehicle, app) => {
                let _ = self.clear_desired(&user, &vehicle, &app);
            }
            JournalRecord::Reconcile(vehicle) => {
                let _ = self.reconcile(&vehicle);
            }
            JournalRecord::MarkOffline(vehicle) => self.mark_offline(&vehicle),
            JournalRecord::MarkOnline(vehicle, boot_epoch) => {
                self.mark_online(&vehicle, boot_epoch);
            }
            JournalRecord::MarkUnreachable(vehicle) => {
                let _ = self.mark_unreachable(&vehicle);
            }
            JournalRecord::RequestStateReport(vehicle) => {
                let _ = self.request_state_report(&vehicle);
            }
            JournalRecord::Tick(now) => {
                let _ = self.tick(now);
            }
            JournalRecord::ProcessUplink(vehicle, payload) => {
                let _ = self.process_uplink(&vehicle, &payload);
            }
            JournalRecord::PollDownlink(vehicle) => {
                let _ = self.poll_downlink(&vehicle);
            }
            JournalRecord::BeginIncarnation => {
                let _ = self.begin_incarnation();
            }
            JournalRecord::CampaignCreate(user, spec) => {
                let _ = self.create_campaign(&user, spec);
            }
            // The decision records replay through the internal apply
            // functions, not through gate evaluation: the live server
            // journaled the *verdict*, so replay reproduces it verbatim.
            JournalRecord::CampaignAdvance(id) => {
                let _ = self.campaign_apply_advance(&id);
            }
            JournalRecord::CampaignPause(id) => self.campaign_apply_pause(&id),
            JournalRecord::CampaignResume(id) => self.campaign_apply_resume(&id),
            JournalRecord::CampaignAbort(id) => {
                let _ = self.campaign_apply_abort(&id);
            }
            JournalRecord::CampaignComplete(id) => self.campaign_apply_complete(&id),
        }
        Ok(())
    }

    /// Starts a new server incarnation (called after a crash recovery
    /// replayed the journal into a fresh process): bumps the incarnation id,
    /// re-stamps every queued and outstanding downlink with it (sequence
    /// ids unchanged — gateway deduplication still applies across the
    /// restart) and solicits a state report from every vehicle, so the
    /// gateways confirm the new incarnation and the observed state
    /// resynchronises.  A zombie pre-crash process keeps stamping the old
    /// incarnation, which the gateways now reject.  Returns the number of
    /// vehicles solicited.
    pub fn begin_incarnation(&mut self) -> usize {
        self.journal_append(|| JournalRecord::BeginIncarnation);
        let incarnation = self.shared.incarnation() + 1;
        self.shared
            .incarnation
            .store(incarnation, Ordering::Relaxed);
        // Sorted: the shards are HashMaps and the sequence ids consumed by
        // the solicitations must be reproducible under journal replay.
        let mut vehicles: Vec<VehicleId> = self
            .shards
            .iter()
            .flat_map(|shard| shard.lock().vehicles.keys().cloned().collect::<Vec<_>>())
            .collect();
        vehicles.sort();
        for vehicle in &vehicles {
            let mut shard = self.shard_of(vehicle);
            let record = shard.vehicles.get_mut(vehicle).expect("key just listed");
            for payload in &mut record.downlink {
                *payload = Self::restamp(payload, incarnation);
            }
            for entry in &mut record.outstanding {
                entry.payload = Self::restamp(&entry.payload, incarnation);
            }
            // No-ECM vehicles simply get no solicitation.
            let _ = Self::op_request_state_report(&mut shard, incarnation, vehicle);
            shard.note_dirty(vehicle);
        }
        vehicles.len()
    }

    /// Re-encodes a server-built downlink envelope with the new incarnation
    /// id (target, sequence id, epoch and message unchanged).
    fn restamp(payload: &Payload, incarnation: u32) -> Payload {
        let mut envelope = DownlinkEnvelope::from_bytes(payload).expect("server-encoded envelope");
        envelope.incarnation = incarnation;
        envelope.to_bytes().into()
    }

    /// The canonical full-state snapshot as a [`Value`]: every map and set
    /// is emitted in sorted order, so two servers in the same logical state
    /// encode identically — [`TrustedServer::snapshot_bytes`] equality *is*
    /// the state-equality check the restart scenario asserts.  The shard
    /// count is deliberately absent (it is a runtime layout choice, so
    /// differently sharded servers in the same state compare equal), and the
    /// deadline heaps and dirty flags are not part of the snapshot: both are
    /// rebuildable views over the outstanding entries and downlink queues.
    pub fn snapshot_value(&self) -> Value {
        let mut users: Vec<&UserId> = self.users.iter().collect();
        users.sort();
        let apps_guard = self.shared.apps.read();
        let mut apps: Vec<&AppId> = apps_guard.keys().collect();
        apps.sort();
        let guards: Vec<MutexGuard<'_, Shard>> =
            self.shards.iter().map(|shard| shard.lock()).collect();
        let mut vehicles: Vec<(&VehicleId, &VehicleRecord)> = guards
            .iter()
            .flat_map(|guard| guard.vehicles.iter())
            .collect();
        vehicles.sort_by(|a, b| a.0.cmp(b.0));
        let policy = self.shared.policy.read();
        Value::List(vec![
            Value::I64(i64::from(self.shared.incarnation())),
            Value::I64(self.shared.now().as_u64() as i64),
            Value::List(vec![
                Value::I64(policy.ack_deadline_ticks as i64),
                Value::I64(i64::from(policy.max_attempts)),
            ]),
            Value::List(
                users
                    .iter()
                    .map(|u| Value::Text(u.name().to_owned()))
                    .collect(),
            ),
            Value::List(apps.iter().map(|a| apps_guard[*a].to_value()).collect()),
            Value::List(
                vehicles
                    .iter()
                    .map(|(vin, record)| {
                        Value::List(vec![Value::Text(vin.vin().to_owned()), record.to_value()])
                    })
                    .collect(),
            ),
            self.shared.ledger.lock().to_value(),
            Value::List(self.campaigns.values().map(Campaign::to_value).collect()),
        ])
    }

    /// [`TrustedServer::snapshot_value`] encoded with the shared codec.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        codec::encode_value(&self.snapshot_value())
    }

    /// Decodes a server from a snapshot value into a `shards`-way layout.
    /// The rebuilt server has journaling off.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed snapshots.
    fn from_snapshot_value(value: &Value, shards: usize) -> Result<TrustedServer> {
        let parts = value.as_list().ok_or_else(|| snap_err("not a list"))?;
        let [incarnation, now, policy, users, apps, vehicles, ledger, campaigns] = parts else {
            return Err(snap_err("top-level arity"));
        };
        let incarnation =
            u32::try_from(incarnation.expect_i64()?).map_err(|_| snap_err("incarnation"))?;
        let now = u64::try_from(now.expect_i64()?).map_err(|_| snap_err("now"))?;
        let policy = {
            let parts = policy.as_list().ok_or_else(|| snap_err("policy"))?;
            let [ack_deadline_ticks, max_attempts] = parts else {
                return Err(snap_err("policy arity"));
            };
            RetryPolicy {
                ack_deadline_ticks: u64::try_from(ack_deadline_ticks.expect_i64()?)
                    .map_err(|_| snap_err("ack deadline"))?,
                max_attempts: u32::try_from(max_attempts.expect_i64()?)
                    .map_err(|_| snap_err("max attempts"))?,
            }
        };
        let users = users
            .as_list()
            .ok_or_else(|| snap_err("users"))?
            .iter()
            .map(|u| {
                Ok(UserId::new(
                    u.as_text().ok_or_else(|| snap_err("user name"))?,
                ))
            })
            .collect::<Result<HashSet<UserId>>>()?;
        let apps = apps
            .as_list()
            .ok_or_else(|| snap_err("apps"))?
            .iter()
            .map(|a| {
                let definition = AppDefinition::from_value(a)?;
                Ok((definition.id.clone(), definition))
            })
            .collect::<Result<HashMap<AppId, AppDefinition>>>()?;
        let server = TrustedServer::with_shards(shards);
        server
            .shared
            .incarnation
            .store(incarnation, Ordering::Relaxed);
        server.shared.now.store(now, Ordering::Relaxed);
        *server.shared.policy.write() = policy;
        *server.shared.apps.write() = apps;
        *server.shared.ledger.lock() = Ledger::from_value(ledger)?;
        let count = server.shards.len();
        for entry in vehicles.as_list().ok_or_else(|| snap_err("vehicles"))? {
            let parts = entry.as_list().ok_or_else(|| snap_err("vehicle entry"))?;
            let [vin, record] = parts else {
                return Err(snap_err("vehicle entry arity"));
            };
            let vin = VehicleId::new(vin.as_text().ok_or_else(|| snap_err("vin"))?);
            let mut record = VehicleRecord::from_value(record)?;
            let mut shard = server.shards[Self::shard_index(&vin, count)].lock();
            // The dirty set is a rebuildable view: a vehicle with queued
            // downlinks is pollable (offline queues re-arm via `note_dirty`
            // when the vehicle returns).
            record.in_dirty = record.online && !record.downlink.is_empty();
            if record.in_dirty {
                shard.dirty.push(vin.clone());
            }
            shard.vehicles.insert(vin, record);
        }
        let mut server = server;
        server.users = users;
        for entry in campaigns.as_list().ok_or_else(|| snap_err("campaigns"))? {
            let campaign = Campaign::from_value(entry)?;
            server.campaigns.insert(campaign.id.clone(), campaign);
        }
        Ok(server)
    }

    // ------------------------------------------------------------------
    // Campaign plane: staged rollouts over the desired-state manifests
    // ------------------------------------------------------------------

    /// Creates a rollout campaign and immediately exposes its canary wave:
    /// the selector is resolved against the creating user's bound vehicles
    /// into a sorted target list, and the first wave's vehicles have their
    /// desired manifests rewritten (the replaced app removed, the campaign
    /// app inserted; the pre-campaign manifest recorded as *last-good*) and
    /// reconciled through the ordinary loop.  Returns the number of
    /// vehicles exposed.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown user or app,
    /// [`DynarError::Duplicate`] for a reused campaign id,
    /// [`DynarError::InvalidConfiguration`] when the selector resolves to no
    /// vehicles, and [`DynarError::CampaignConflict`] when another active
    /// campaign already targets the same app on an overlapping vehicle.
    pub fn create_campaign(&mut self, user: &UserId, spec: CampaignSpec) -> Result<usize> {
        self.journal_append(|| JournalRecord::CampaignCreate(user.clone(), spec.clone()));
        if !self.users.contains(user) {
            return Err(DynarError::not_found("user", user));
        }
        {
            let apps = self.shared.apps.read();
            if !apps.contains_key(&spec.app) {
                return Err(DynarError::not_found("app", &spec.app));
            }
            if let Some(replaces) = &spec.replaces {
                if !apps.contains_key(replaces) {
                    return Err(DynarError::not_found("app", replaces));
                }
            }
        }
        if self.campaigns.contains_key(&spec.id) {
            return Err(DynarError::duplicate("campaign", &spec.id));
        }
        let targets = self.resolve_selector(user, &spec.selector);
        if targets.is_empty() {
            return Err(DynarError::invalid_config(format!(
                "campaign {} selects no vehicles bound to {user}",
                spec.id
            )));
        }
        for other in self.campaigns.values() {
            if other.is_active()
                && other.app == spec.app
                && targets
                    .iter()
                    .any(|t| other.targets.binary_search(t).is_ok())
            {
                return Err(DynarError::CampaignConflict {
                    campaign: spec.id.name().to_owned(),
                    conflicts_with: other.id.name().to_owned(),
                    app: spec.app.name().to_owned(),
                });
            }
        }
        let id = spec.id.clone();
        self.campaigns
            .insert(id.clone(), Campaign::new(spec, user.clone(), targets));
        Ok(self.campaign_expose_next_wave(&id))
    }

    /// Pauses a running campaign (an operator hold: exposure freezes until
    /// [`TrustedServer::resume_campaign`] or
    /// [`TrustedServer::abort_campaign`]).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown or foreign campaign
    /// and [`DynarError::InvalidConfiguration`] when it is not running.
    pub fn pause_campaign(&mut self, user: &UserId, id: &CampaignId) -> Result<()> {
        self.check_campaign(user, id, &[CampaignStatus::Running])?;
        self.journal_append(|| JournalRecord::CampaignPause(id.clone()));
        self.campaign_apply_pause(id);
        Ok(())
    }

    /// Resumes a paused campaign.  The soak dwell restarts: the ticks spent
    /// paused do not count towards [`crate::campaign::HealthGate::min_soak_ticks`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown or foreign campaign
    /// and [`DynarError::InvalidConfiguration`] when it is not paused.
    pub fn resume_campaign(&mut self, user: &UserId, id: &CampaignId) -> Result<()> {
        self.check_campaign(user, id, &[CampaignStatus::Paused])?;
        self.journal_append(|| JournalRecord::CampaignResume(id.clone()));
        self.campaign_apply_resume(id);
        Ok(())
    }

    /// Aborts a running or paused campaign, rolling every exposed vehicle
    /// back to its recorded last-good manifest.  Returns the number of
    /// vehicles restored.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown or foreign campaign
    /// and [`DynarError::InvalidConfiguration`] when it already ended.
    pub fn abort_campaign(&mut self, user: &UserId, id: &CampaignId) -> Result<usize> {
        self.check_campaign(user, id, &[CampaignStatus::Running, CampaignStatus::Paused])?;
        self.journal_append(|| JournalRecord::CampaignAbort(id.clone()));
        Ok(self.campaign_apply_abort(id))
    }

    /// Evaluates every running campaign's health gate against the current
    /// vehicle state and applies the verdicts: **abort** (and roll back) at
    /// [`crate::campaign::HealthGate::abort_failed`] failures, **pause** at
    /// `pause_failed`, **advance** once the wave soaked with every exposed
    /// vehicle acknowledged — or **complete** when the final wave converges.
    /// Each verdict is journaled as its own decision record, so
    /// [`TrustedServer::replay`] re-applies the decision without
    /// re-evaluating the gate: the journal stays a log of inputs, and a
    /// mid-campaign crash replays byte-identically.  Call once per tick from
    /// the driving runtime (never during replay).
    pub fn step_campaigns(&mut self) -> Vec<CampaignEvent> {
        let ids: Vec<CampaignId> = self.campaigns.keys().cloned().collect();
        let mut events = Vec::new();
        for id in ids {
            let Some(campaign) = self.campaigns.get(&id) else {
                continue;
            };
            if campaign.status != CampaignStatus::Running {
                continue;
            }
            let gate = campaign.gate.clone();
            let wave_started = campaign.wave_started;
            let exposed = campaign.last_good.len() as u64;
            let total = campaign.targets.len();
            let final_wave = campaign.plan.cumulative_target(campaign.wave, total) >= total;
            let (succeeded, failed, pending) = self.campaign_health(&id);
            let now = self.shared.now();
            let soaked = now.as_u64().saturating_sub(wave_started.as_u64()) >= gate.min_soak_ticks;
            if gate.abort_failed > 0 && failed >= gate.abort_failed {
                self.journal_append(|| JournalRecord::CampaignAbort(id.clone()));
                let rolled_back = self.campaign_apply_abort(&id);
                events.push(CampaignEvent::Aborted {
                    campaign: id,
                    failed,
                    rolled_back,
                });
            } else if gate.pause_failed > 0 && failed >= gate.pause_failed {
                self.journal_append(|| JournalRecord::CampaignPause(id.clone()));
                self.campaign_apply_pause(&id);
                events.push(CampaignEvent::Paused {
                    campaign: id,
                    failed,
                });
            } else if soaked && pending == 0 && failed == 0 && succeeded == exposed {
                if final_wave {
                    self.journal_append(|| JournalRecord::CampaignComplete(id.clone()));
                    self.campaign_apply_complete(&id);
                    events.push(CampaignEvent::Completed {
                        campaign: id,
                        succeeded,
                    });
                } else {
                    self.journal_append(|| JournalRecord::CampaignAdvance(id.clone()));
                    let newly = self.campaign_apply_advance(&id);
                    let wave = self.campaigns.get(&id).map_or(0, |c| c.wave);
                    events.push(CampaignEvent::Advanced {
                        campaign: id,
                        wave,
                        exposed: newly,
                    });
                }
            }
        }
        events
    }

    /// The campaign registered under `id`, if any.
    pub fn campaign(&self, id: &CampaignId) -> Option<&Campaign> {
        self.campaigns.get(id)
    }

    /// Every registered campaign id, sorted.
    pub fn campaign_ids(&self) -> Vec<CampaignId> {
        self.campaigns.keys().cloned().collect()
    }

    /// `true` while any campaign is running — the tick-free actor runtime
    /// keeps ticking (and stepping campaigns) while this holds, so soak
    /// dwells elapse even with no retransmission deadline armed.
    pub fn has_active_campaigns(&self) -> bool {
        self.campaigns
            .values()
            .any(|c| c.status == CampaignStatus::Running)
    }

    /// Resolves a selector into the sorted list of vehicles bound to `user`
    /// that the campaign will target.  Shard iteration order does not leak:
    /// the result is sorted, so resolution is deterministic under journal
    /// replay at any shard count.
    fn resolve_selector(&self, user: &UserId, selector: &VehicleSelector) -> Vec<VehicleId> {
        let mut targets = Vec::new();
        match selector {
            VehicleSelector::Vehicles(vehicles) => {
                for vehicle in vehicles {
                    let shard = self.shard_of(vehicle);
                    if shard
                        .vehicles
                        .get(vehicle)
                        .is_some_and(|r| r.owner.as_ref() == Some(user))
                    {
                        targets.push(vehicle.clone());
                    }
                }
            }
            VehicleSelector::All | VehicleSelector::Model(_) => {
                for shard in &self.shards {
                    let shard = shard.lock();
                    for (vehicle, record) in &shard.vehicles {
                        if record.owner.as_ref() != Some(user) {
                            continue;
                        }
                        if let VehicleSelector::Model(model) = selector {
                            if record.system.model != *model {
                                continue;
                            }
                        }
                        targets.push(vehicle.clone());
                    }
                }
            }
        }
        targets.sort();
        targets.dedup();
        targets
    }

    /// Opens the next wave of `id`: bumps the wave counter, stamps the soak
    /// baseline and rewrites the desired manifest of every newly covered
    /// target — recording its pre-campaign manifest as last-good first —
    /// then reconciles each through the ordinary loop.  Shared by the
    /// create and advance transitions; replay applies the journaled
    /// decision through this same function without re-evaluating the gate.
    fn campaign_expose_next_wave(&mut self, id: &CampaignId) -> usize {
        let now = self.shared.now();
        let Some(campaign) = self.campaigns.get_mut(id) else {
            return 0;
        };
        let total = campaign.targets.len();
        campaign.wave += 1;
        campaign.wave_started = now;
        let upto = campaign.plan.cumulative_target(campaign.wave, total);
        let batch: Vec<VehicleId> = campaign
            .targets
            .iter()
            .filter(|t| !campaign.last_good.contains_key(*t))
            .take(upto.saturating_sub(campaign.last_good.len()))
            .cloned()
            .collect();
        let app = campaign.app.clone();
        let replaces = campaign.replaces.clone();
        let mut exposed = Vec::with_capacity(batch.len());
        {
            let apps = self.shared.apps.read();
            let ctx = self.shared.op_ctx(&apps);
            for vehicle in &batch {
                let mut shard = self.shard_of(vehicle);
                let Some(record) = shard.vehicles.get_mut(vehicle) else {
                    // Dropped from the fleet since resolution: skipped now,
                    // never retried (`last_good` stays unset, the wave math
                    // simply moves past it).
                    continue;
                };
                let last_good = record.desired.clone();
                if let Some(replaced) = &replaces {
                    record.desired.remove(replaced);
                }
                record.desired.insert(app.clone());
                {
                    let mut ledger = self.shared.ledger.lock();
                    ledger.campaign_exposures += 1;
                    let _ = Self::op_reconcile(&mut shard, &mut ledger, &ctx, vehicle);
                }
                shard.note_dirty(vehicle);
                exposed.push((vehicle.clone(), last_good));
            }
        }
        let campaign = self.campaigns.get_mut(id).expect("present above");
        let count = exposed.len();
        for (vehicle, last_good) in exposed {
            campaign.last_good.insert(vehicle, last_good);
        }
        campaign.counters.exposed = campaign.last_good.len() as u64;
        count
    }

    /// Counts `(succeeded, failed, pending)` over every vehicle `id` has
    /// exposed, read through the shard locks at the serial evaluation
    /// point.  *Failed* is the per-vehicle failure record of the campaign
    /// app — NACKed installs, retry exhaustions and state-report resyncs
    /// all resolve into it, so the gate sees every failure mode through one
    /// predicate.  A vehicle that vanished from the fleet counts failed.
    fn campaign_health(&self, id: &CampaignId) -> (u64, u64, u64) {
        let Some(campaign) = self.campaigns.get(id) else {
            return (0, 0, 0);
        };
        let (mut succeeded, mut failed, mut pending) = (0u64, 0u64, 0u64);
        for vehicle in campaign.last_good.keys() {
            let shard = self.shard_of(vehicle);
            match shard.vehicles.get(vehicle) {
                Some(record) if record.failed.contains_key(&campaign.app) => failed += 1,
                Some(record) if record.pending.contains_key(&campaign.app) => pending += 1,
                Some(record) if record.installed.contains_key(&campaign.app) => succeeded += 1,
                // Exposed but not yet pushed (offline, dependency wait):
                // still converging.
                Some(_) => pending += 1,
                None => failed += 1,
            }
        }
        (succeeded, failed, pending)
    }

    /// Recomputes the succeeded/failed counters from the vehicle state.
    /// Only ever called inside a journaled transition — the counters are
    /// snapshotted state, so they may only move when replay moves them too.
    fn campaign_refresh_counters(&mut self, id: &CampaignId) {
        let (succeeded, failed, _) = self.campaign_health(id);
        if let Some(campaign) = self.campaigns.get_mut(id) {
            campaign.counters.succeeded = succeeded;
            campaign.counters.failed = failed;
        }
    }

    /// Applies an advance decision: refreshes the counters and exposes the
    /// next wave.
    fn campaign_apply_advance(&mut self, id: &CampaignId) -> usize {
        self.campaign_refresh_counters(id);
        self.campaign_expose_next_wave(id)
    }

    /// Applies a pause decision.
    fn campaign_apply_pause(&mut self, id: &CampaignId) {
        self.campaign_refresh_counters(id);
        if let Some(campaign) = self.campaigns.get_mut(id) {
            campaign.status = CampaignStatus::Paused;
        }
    }

    /// Applies a resume decision, restarting the soak dwell.
    fn campaign_apply_resume(&mut self, id: &CampaignId) {
        let now = self.shared.now();
        if let Some(campaign) = self.campaigns.get_mut(id) {
            campaign.status = CampaignStatus::Running;
            campaign.wave_started = now;
        }
    }

    /// Applies a complete decision.
    fn campaign_apply_complete(&mut self, id: &CampaignId) {
        self.campaign_refresh_counters(id);
        if let Some(campaign) = self.campaigns.get_mut(id) {
            campaign.status = CampaignStatus::Complete;
            self.shared.ledger.lock().campaigns_completed += 1;
        }
    }

    /// Applies an abort decision: refreshes the counters (the failure tally
    /// that tripped the gate survives in the campaign record), restores
    /// every exposed vehicle's last-good desired manifest in sorted vehicle
    /// order and reconciles each — dependency order emerges from the
    /// reconciliation loop's own skip logic, and a rollback is a manifest
    /// *restore*, not an uninstall.  Returns the number of vehicles
    /// restored.
    fn campaign_apply_abort(&mut self, id: &CampaignId) -> usize {
        self.campaign_refresh_counters(id);
        let Some(campaign) = self.campaigns.get_mut(id) else {
            return 0;
        };
        campaign.status = CampaignStatus::Aborted;
        let restores: Vec<(VehicleId, BTreeSet<AppId>)> = campaign
            .last_good
            .iter()
            .map(|(vehicle, apps)| (vehicle.clone(), apps.clone()))
            .collect();
        let mut restored = 0usize;
        {
            let apps = self.shared.apps.read();
            let ctx = self.shared.op_ctx(&apps);
            for (vehicle, last_good) in restores {
                let mut shard = self.shard_of(&vehicle);
                let Some(record) = shard.vehicles.get_mut(&vehicle) else {
                    continue;
                };
                record.desired = last_good;
                {
                    let mut ledger = self.shared.ledger.lock();
                    ledger.campaign_rollbacks += 1;
                    let _ = Self::op_reconcile(&mut shard, &mut ledger, &ctx, &vehicle);
                }
                shard.note_dirty(&vehicle);
                restored += 1;
            }
        }
        let campaign = self.campaigns.get_mut(id).expect("present above");
        campaign.counters.rolled_back = restored as u64;
        self.shared.ledger.lock().campaigns_aborted += 1;
        restored
    }

    /// Validates a manual campaign transition *before* its journal append:
    /// the decision records replay unconditionally, so only applied
    /// transitions may reach the journal.  (Safe ahead of `journal_append`
    /// because it takes no locks.)
    fn check_campaign(
        &self,
        user: &UserId,
        id: &CampaignId,
        wanted: &[CampaignStatus],
    ) -> Result<()> {
        let campaign = self
            .campaigns
            .get(id)
            .ok_or_else(|| DynarError::not_found("campaign", id))?;
        if campaign.user != *user {
            return Err(DynarError::not_found(
                "campaign owned by user",
                format!("{id} for {user}"),
            ));
        }
        if !wanted.contains(&campaign.status) {
            return Err(DynarError::invalid_config(format!(
                "campaign {id} cannot transition from {:?}",
                campaign.status
            )));
        }
        Ok(())
    }

    fn check_owner(&self, user: &UserId, vehicle: &VehicleId) -> Result<()> {
        let shard = self.shard_of(vehicle);
        let record = shard
            .vehicles
            .get(vehicle)
            .ok_or_else(|| DynarError::not_found("vehicle", vehicle))?;
        if record.owner.as_ref() != Some(user) {
            return Err(DynarError::not_found(
                "vehicle bound to user",
                format!("{vehicle} for {user}"),
            ));
        }
        Ok(())
    }
}

impl ShardHandle {
    /// The shard this handle drives (the value [`TrustedServer::shard_index`]
    /// maps this shard's vehicles to).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Runs the retransmission sweep over this shard's vehicles (the
    /// per-shard half of [`TrustedServer::tick`]; the caller journals the
    /// tick serially via [`TrustedServer::begin_tick`] first).  Escalated
    /// failures are appended to `failures`.
    pub fn tick(&self, now: Tick, failures: &mut Vec<RetryFailure>) {
        let policy = self.shared.policy.read().clone();
        let mut delta = Ledger::default();
        {
            let mut shard = self.shard.lock();
            TrustedServer::op_tick(&mut shard, &mut delta, &policy, now, failures);
        }
        // Fold the commutative counter delta in *after* releasing the shard:
        // the ledger lock must never serialize the parallel sweep.
        self.shared.ledger.lock().merge_from(&delta);
    }

    /// Drains this shard's dirty downlink queues (see
    /// [`TrustedServer::poll_downlink_dirty`]); returns the number of
    /// vehicles drained.
    pub fn poll_downlink_dirty(&self, mut f: impl FnMut(&VehicleId, Payload)) -> u64 {
        let mut shard = self.shard.lock();
        TrustedServer::op_poll_dirty(&mut shard, self.journaling, &mut f)
    }

    /// Processes one uplink message from a vehicle of this shard (see
    /// [`TrustedServer::process_uplink`]).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles and
    /// [`DynarError::ProtocolViolation`] for malformed or unexpected uplink
    /// payloads.
    pub fn process_uplink(&self, vehicle: &VehicleId, payload: &[u8]) -> Result<()> {
        let apps = self.shared.apps.read();
        let ctx = self.shared.op_ctx(&apps);
        let mut delta = Ledger::default();
        let result = {
            let mut shard = self.shard.lock();
            if self.journaling {
                // Journal-first, like the serial path: even a rejected uplink
                // is recorded (it replays to the same rejection).
                shard.journal_buf.push(JournalRecord::ProcessUplink(
                    vehicle.clone(),
                    payload.to_vec(),
                ));
            }
            TrustedServer::op_process_uplink(&mut shard, &mut delta, &ctx, vehicle, payload)
        };
        self.shared.ledger.lock().merge_from(&delta);
        result
    }

    /// Parks a vehicle of this shard (see [`TrustedServer::mark_offline`]).
    pub fn mark_offline(&self, vehicle: &VehicleId) {
        let mut shard = self.shard.lock();
        if self.journaling {
            shard
                .journal_buf
                .push(JournalRecord::MarkOffline(vehicle.clone()));
        }
        if let Some(record) = shard.vehicles.get_mut(vehicle) {
            record.online = false;
        }
    }
}

// ----------------------------------------------------------------------
// Snapshot value codec for the per-vehicle bookkeeping
// ----------------------------------------------------------------------

fn snap_err(what: &str) -> DynarError {
    DynarError::ProtocolViolation(format!("malformed server snapshot: {what}"))
}

fn snap_text(value: &Value, what: &str) -> Result<String> {
    Ok(value.as_text().ok_or_else(|| snap_err(what))?.to_owned())
}

fn snap_u64(value: &Value, what: &str) -> Result<u64> {
    u64::try_from(value.expect_i64()?).map_err(|_| snap_err(what))
}

fn snap_u32(value: &Value, what: &str) -> Result<u32> {
    u32::try_from(value.expect_i64()?).map_err(|_| snap_err(what))
}

fn snap_ecu(value: &Value, what: &str) -> Result<EcuId> {
    Ok(EcuId::new(
        u16::try_from(value.expect_i64()?).map_err(|_| snap_err(what))?,
    ))
}

fn snap_bool(value: &Value, what: &str) -> Result<bool> {
    value.as_bool().ok_or_else(|| snap_err(what))
}

/// Installation packages ride inside the snapshot as the very
/// [`ManagementMessage::Install`] encoding the wire uses — one codec, one
/// truth.
fn package_to_value(package: &InstallationPackage) -> Value {
    ManagementMessage::Install(package.clone()).to_value()
}

fn package_from_value(value: &Value) -> Result<InstallationPackage> {
    match ManagementMessage::from_value(value)? {
        ManagementMessage::Install(package) => Ok(package),
        _ => Err(snap_err("packaged message is not an install")),
    }
}

impl PendingKind {
    fn to_value(&self) -> Value {
        Value::I64(match self {
            PendingKind::Install => 0,
            PendingKind::Uninstall => 1,
        })
    }

    fn from_value(value: &Value) -> Result<Self> {
        match value.expect_i64()? {
            0 => Ok(PendingKind::Install),
            1 => Ok(PendingKind::Uninstall),
            other => Err(snap_err(&format!("unknown pending kind {other}"))),
        }
    }
}

impl InstalledApp {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::List(
                self.plugins
                    .iter()
                    .map(|(plugin, ecu)| {
                        Value::List(vec![
                            Value::Text(plugin.name().to_owned()),
                            Value::I64(i64::from(ecu.index())),
                        ])
                    })
                    .collect(),
            ),
            Value::List(
                self.packages
                    .iter()
                    .map(|(ecu, package)| {
                        Value::List(vec![
                            Value::I64(i64::from(ecu.index())),
                            package_to_value(package),
                        ])
                    })
                    .collect(),
            ),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| snap_err("installed app"))?;
        let [plugins, packages] = parts else {
            return Err(snap_err("installed-app arity"));
        };
        let plugins = plugins
            .as_list()
            .ok_or_else(|| snap_err("installed plugins"))?
            .iter()
            .map(|pair| {
                let parts = pair.as_list().ok_or_else(|| snap_err("plugin pair"))?;
                let [plugin, ecu] = parts else {
                    return Err(snap_err("plugin pair arity"));
                };
                Ok((
                    PluginId::new(snap_text(plugin, "plugin name")?),
                    snap_ecu(ecu, "plugin ECU")?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let packages = packages
            .as_list()
            .ok_or_else(|| snap_err("installed packages"))?
            .iter()
            .map(|pair| {
                let parts = pair.as_list().ok_or_else(|| snap_err("package pair"))?;
                let [ecu, package] = parts else {
                    return Err(snap_err("package pair arity"));
                };
                Ok((snap_ecu(ecu, "package ECU")?, package_from_value(package)?))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(InstalledApp { plugins, packages })
    }
}

impl PendingOperation {
    fn to_value(&self) -> Value {
        // `awaiting` is a HashSet: sorted for a canonical encoding.
        let mut awaiting: Vec<&PluginId> = self.awaiting.iter().collect();
        awaiting.sort();
        Value::List(vec![
            self.kind.to_value(),
            Value::List(
                awaiting
                    .iter()
                    .map(|p| Value::Text(p.name().to_owned()))
                    .collect(),
            ),
            self.record.to_value(),
            match &self.failure {
                Some(reason) => Value::Text(reason.clone()),
                None => Value::Void,
            },
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| snap_err("pending op"))?;
        let [kind, awaiting, record, failure] = parts else {
            return Err(snap_err("pending-op arity"));
        };
        let awaiting = awaiting
            .as_list()
            .ok_or_else(|| snap_err("awaiting"))?
            .iter()
            .map(|p| Ok(PluginId::new(snap_text(p, "awaited plugin")?)))
            .collect::<Result<HashSet<PluginId>>>()?;
        let failure = if failure.is_void() {
            None
        } else {
            Some(snap_text(failure, "failure reason")?)
        };
        Ok(PendingOperation {
            kind: PendingKind::from_value(kind)?,
            awaiting,
            record: InstalledApp::from_value(record)?,
            failure,
        })
    }
}

impl OutstandingDownlink {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::I64(self.seq as i64),
            Value::I64(i64::from(self.ecu.index())),
            Value::Text(self.plugin.name().to_owned()),
            Value::Text(self.app.name().to_owned()),
            self.kind.to_value(),
            Value::Bytes(self.payload.as_ref().to_vec()),
            Value::I64(i64::from(self.attempts)),
            Value::I64(self.deadline.as_u64() as i64),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| snap_err("outstanding"))?;
        let [seq, ecu, plugin, app, kind, payload, attempts, deadline] = parts else {
            return Err(snap_err("outstanding arity"));
        };
        Ok(OutstandingDownlink {
            seq: snap_u64(seq, "seq")?,
            ecu: snap_ecu(ecu, "outstanding ECU")?,
            plugin: PluginId::new(snap_text(plugin, "outstanding plugin")?),
            app: AppId::new(snap_text(app, "outstanding app")?),
            kind: PendingKind::from_value(kind)?,
            payload: Payload::copy_from(
                payload
                    .as_bytes()
                    .ok_or_else(|| snap_err("outstanding payload"))?,
            ),
            attempts: snap_u32(attempts, "attempts")?,
            deadline: Tick::new(snap_u64(deadline, "deadline")?),
        })
    }
}

impl VehicleRecord {
    fn to_value(&self) -> Value {
        let sorted_map = |len: usize, pairs: &mut dyn Iterator<Item = (&AppId, Value)>| -> Value {
            let mut entries: Vec<(&AppId, Value)> = Vec::with_capacity(len);
            entries.extend(pairs);
            entries.sort_by(|a, b| a.0.cmp(b.0));
            Value::List(
                entries
                    .into_iter()
                    .map(|(app, value)| {
                        Value::List(vec![Value::Text(app.name().to_owned()), value])
                    })
                    .collect(),
            )
        };
        let mut ports: Vec<(&EcuId, &u32)> = self.next_port_id.iter().collect();
        ports.sort();
        Value::List(vec![
            self.hw.to_value(),
            self.system.to_value(),
            match &self.owner {
                Some(owner) => Value::Text(owner.name().to_owned()),
                None => Value::Void,
            },
            Value::List(
                self.desired
                    .iter()
                    .map(|app| Value::Text(app.name().to_owned()))
                    .collect(),
            ),
            sorted_map(
                self.installed.len(),
                &mut self.installed.iter().map(|(app, r)| (app, r.to_value())),
            ),
            sorted_map(
                self.pending.len(),
                &mut self.pending.iter().map(|(app, p)| (app, p.to_value())),
            ),
            sorted_map(
                self.failed.len(),
                &mut self
                    .failed
                    .iter()
                    .map(|(app, reason)| (app, Value::Text(reason.clone()))),
            ),
            Value::Bool(self.online),
            Value::Bool(self.awaiting_report),
            Value::I64(i64::from(self.boot_epoch)),
            Value::List(
                ports
                    .into_iter()
                    .map(|(ecu, next)| {
                        Value::List(vec![
                            Value::I64(i64::from(ecu.index())),
                            Value::I64(i64::from(*next)),
                        ])
                    })
                    .collect(),
            ),
            Value::List(
                self.downlink
                    .iter()
                    .map(|p| Value::Bytes(p.as_ref().to_vec()))
                    .collect(),
            ),
            Value::I64(self.next_seq as i64),
            Value::List(self.outstanding.iter().map(|o| o.to_value()).collect()),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| snap_err("vehicle record"))?;
        let [hw, system, owner, desired, installed, pending, failed, online, awaiting_report, boot_epoch, next_port_id, downlink, next_seq, outstanding] =
            parts
        else {
            return Err(snap_err("vehicle-record arity"));
        };
        let owner = if owner.is_void() {
            None
        } else {
            Some(UserId::new(snap_text(owner, "owner")?))
        };
        let desired = desired
            .as_list()
            .ok_or_else(|| snap_err("desired"))?
            .iter()
            .map(|app| Ok(AppId::new(snap_text(app, "desired app")?)))
            .collect::<Result<BTreeSet<AppId>>>()?;
        let app_map = |value: &Value, what: &str| -> Result<Vec<(AppId, Value)>> {
            value
                .as_list()
                .ok_or_else(|| snap_err(what))?
                .iter()
                .map(|pair| {
                    let parts = pair.as_list().ok_or_else(|| snap_err(what))?;
                    let [app, inner] = parts else {
                        return Err(snap_err(what));
                    };
                    Ok((AppId::new(snap_text(app, what)?), inner.clone()))
                })
                .collect()
        };
        let installed = app_map(installed, "installed map")?
            .into_iter()
            .map(|(app, value)| Ok((app, InstalledApp::from_value(&value)?)))
            .collect::<Result<HashMap<_, _>>>()?;
        let pending = app_map(pending, "pending map")?
            .into_iter()
            .map(|(app, value)| Ok((app, PendingOperation::from_value(&value)?)))
            .collect::<Result<HashMap<_, _>>>()?;
        let failed = app_map(failed, "failed map")?
            .into_iter()
            .map(|(app, value)| Ok((app, snap_text(&value, "failure reason")?)))
            .collect::<Result<HashMap<_, _>>>()?;
        let next_port_id = next_port_id
            .as_list()
            .ok_or_else(|| snap_err("port ids"))?
            .iter()
            .map(|pair| {
                let parts = pair.as_list().ok_or_else(|| snap_err("port-id pair"))?;
                let [ecu, next] = parts else {
                    return Err(snap_err("port-id pair arity"));
                };
                Ok((
                    snap_ecu(ecu, "port-id ECU")?,
                    snap_u32(next, "next port id")?,
                ))
            })
            .collect::<Result<HashMap<EcuId, u32>>>()?;
        let downlink = downlink
            .as_list()
            .ok_or_else(|| snap_err("downlink"))?
            .iter()
            .map(|p| {
                Ok(Payload::copy_from(
                    p.as_bytes().ok_or_else(|| snap_err("downlink payload"))?,
                ))
            })
            .collect::<Result<Vec<Payload>>>()?;
        let outstanding = outstanding
            .as_list()
            .ok_or_else(|| snap_err("outstanding list"))?
            .iter()
            .map(OutstandingDownlink::from_value)
            .collect::<Result<Vec<_>>>()?;
        // The deadline heap is a rebuildable view: one live entry per
        // outstanding package.  (The journaling server's heap may carry
        // extra *stale* entries — lazily invalidated no-ops — so the heap is
        // excluded from the snapshot rather than compared.)
        let mut deadlines = BinaryHeap::with_capacity(outstanding.len());
        for entry in &outstanding {
            deadlines.push(Reverse((entry.deadline, entry.seq)));
        }
        Ok(VehicleRecord {
            hw: HwConf::from_value(hw)?,
            system: SystemSwConf::from_value(system)?,
            owner,
            desired,
            installed,
            pending,
            failed,
            online: snap_bool(online, "online")?,
            awaiting_report: snap_bool(awaiting_report, "awaiting report")?,
            boot_epoch: snap_u32(boot_epoch, "boot epoch")?,
            next_port_id,
            downlink,
            next_seq: snap_u64(next_seq, "next seq")?,
            outstanding,
            deadlines,
            in_dirty: false,
        })
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PluginArtifact, PluginPortDecl, PluginSwcDecl, VirtualPortDecl};
    use dynar_core::plugin::PluginPortDirection;
    use dynar_foundation::ids::VirtualPortId;
    use dynar_vm::assembler::assemble;

    fn binary(name: &str) -> Vec<u8> {
        assemble(name, "yield\nhalt").unwrap().to_bytes()
    }

    fn system_conf() -> SystemSwConf {
        SystemSwConf::new("model-car")
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(1),
                swc_name: "ecm-swc".into(),
                is_ecm: true,
                virtual_ports: vec![VirtualPortDecl {
                    id: VirtualPortId::new(0),
                    name: "PluginData".into(),
                    kind: VirtualPortKindDecl::TypeII {
                        peer: EcuId::new(2),
                    },
                }],
            })
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(2),
                swc_name: "plugin-swc-2".into(),
                is_ecm: false,
                virtual_ports: vec![
                    VirtualPortDecl {
                        id: VirtualPortId::new(3),
                        name: "PluginDataIn".into(),
                        kind: VirtualPortKindDecl::TypeII {
                            peer: EcuId::new(1),
                        },
                    },
                    VirtualPortDecl {
                        id: VirtualPortId::new(4),
                        name: "WheelsReq".into(),
                        kind: VirtualPortKindDecl::TypeIII,
                    },
                    VirtualPortDecl {
                        id: VirtualPortId::new(5),
                        name: "SpeedReq".into(),
                        kind: VirtualPortKindDecl::TypeIII,
                    },
                ],
            })
    }

    fn hw_conf() -> HwConf {
        HwConf::new()
            .with_ecu(EcuId::new(1), 512)
            .with_ecu(EcuId::new(2), 512)
    }

    fn remote_control_app() -> AppDefinition {
        AppDefinition::new(AppId::new("remote-control"))
            .with_plugin(PluginArtifact {
                id: PluginId::new("COM"),
                binary: binary("COM"),
                ports: vec![
                    PluginPortDecl {
                        name: "wheels_ext".into(),
                        direction: PluginPortDirection::Required,
                    },
                    PluginPortDecl {
                        name: "speed_ext".into(),
                        direction: PluginPortDirection::Required,
                    },
                    PluginPortDecl {
                        name: "wheels_fwd".into(),
                        direction: PluginPortDirection::Provided,
                    },
                    PluginPortDecl {
                        name: "speed_fwd".into(),
                        direction: PluginPortDirection::Provided,
                    },
                ],
            })
            .with_plugin(PluginArtifact {
                id: PluginId::new("OP"),
                binary: binary("OP"),
                ports: vec![
                    PluginPortDecl {
                        name: "wheels_in".into(),
                        direction: PluginPortDirection::Required,
                    },
                    PluginPortDecl {
                        name: "speed_in".into(),
                        direction: PluginPortDirection::Required,
                    },
                    PluginPortDecl {
                        name: "wheels_out".into(),
                        direction: PluginPortDirection::Provided,
                    },
                    PluginPortDecl {
                        name: "speed_out".into(),
                        direction: PluginPortDirection::Provided,
                    },
                ],
            })
            .with_sw_conf(
                SwConf::new("model-car")
                    .with_placement(PluginId::new("COM"), EcuId::new(1))
                    .with_placement(PluginId::new("OP"), EcuId::new(2))
                    .with_connection(
                        PluginId::new("COM"),
                        "wheels_ext",
                        ConnectionDecl::External {
                            endpoint: "phone".into(),
                            message_id: "Wheels".into(),
                        },
                    )
                    .with_connection(
                        PluginId::new("COM"),
                        "speed_ext",
                        ConnectionDecl::External {
                            endpoint: "phone".into(),
                            message_id: "Speed".into(),
                        },
                    )
                    .with_connection(
                        PluginId::new("COM"),
                        "wheels_fwd",
                        ConnectionDecl::RemotePlugin {
                            plugin: PluginId::new("OP"),
                            port: "wheels_in".into(),
                        },
                    )
                    .with_connection(
                        PluginId::new("COM"),
                        "speed_fwd",
                        ConnectionDecl::RemotePlugin {
                            plugin: PluginId::new("OP"),
                            port: "speed_in".into(),
                        },
                    )
                    .with_connection(
                        PluginId::new("OP"),
                        "wheels_out",
                        ConnectionDecl::VirtualPort {
                            name: "WheelsReq".into(),
                        },
                    )
                    .with_connection(
                        PluginId::new("OP"),
                        "speed_out",
                        ConnectionDecl::VirtualPort {
                            name: "SpeedReq".into(),
                        },
                    ),
            )
    }

    fn server_with_vehicle() -> (TrustedServer, UserId, VehicleId) {
        let mut server = TrustedServer::new();
        let user = UserId::new("alice");
        let vehicle = VehicleId::new("VIN-1");
        server.create_user(user.clone()).unwrap();
        server
            .register_vehicle(vehicle.clone(), hw_conf(), system_conf())
            .unwrap();
        server.bind_vehicle(&user, &vehicle).unwrap();
        server.upload_app(remote_control_app()).unwrap();
        (server, user, vehicle)
    }

    fn ack(plugin: &str, app: &str, ecu: u16, status: AckStatus) -> Vec<u8> {
        ManagementMessage::Ack(Ack {
            plugin: PluginId::new(plugin),
            app: AppId::new(app),
            ecu: EcuId::new(ecu),
            status,
        })
        .to_bytes()
    }

    #[test]
    fn user_setup_operations() {
        let mut server = TrustedServer::new();
        let user = UserId::new("alice");
        server.create_user(user.clone()).unwrap();
        assert!(server.create_user(user.clone()).is_err());
        assert!(server
            .bind_vehicle(&user, &VehicleId::new("VIN-9"))
            .is_err());
    }

    #[test]
    fn plan_generates_the_paper_contexts() {
        let (server, _user, vehicle) = server_with_vehicle();
        let packages = server
            .plan_deployment(&vehicle, &AppId::new("remote-control"))
            .unwrap();
        assert_eq!(packages.len(), 2);

        let (com_ecu, com) = &packages[0];
        assert_eq!(*com_ecu, EcuId::new(1));
        assert_eq!(com.plugin, PluginId::new("COM"));
        // COM's PLC: P0-, P1-, P2-V0.P0, P3-V0.P1 (as in §4).
        assert_eq!(
            com.context.plc.target_of(PluginPortId::new(0)),
            LinkTarget::Direct
        );
        assert_eq!(
            com.context.plc.target_of(PluginPortId::new(2)),
            LinkTarget::RemotePluginPort {
                via: VirtualPortId::new(0),
                remote: PluginPortId::new(0),
            }
        );
        let ecc = com.context.ecc.as_ref().unwrap();
        assert_eq!(ecc.route_for("Wheels").unwrap().ecu, EcuId::new(1));

        let (op_ecu, op) = &packages[1];
        assert_eq!(*op_ecu, EcuId::new(2));
        // OP's PLC: P0-V3... wait: wheels_in/speed_in are fed through the
        // remote link, so only the outputs are listed: P2-V4, P3-V5.
        assert_eq!(
            op.context.plc.target_of(PluginPortId::new(2)),
            LinkTarget::VirtualPort(VirtualPortId::new(4))
        );
        assert_eq!(
            op.context.plc.target_of(PluginPortId::new(3)),
            LinkTarget::VirtualPort(VirtualPortId::new(5))
        );
        assert!(op.context.ecc.is_none());
    }

    #[test]
    fn incompatible_vehicles_are_rejected_with_reasons() {
        let (mut server, user, _vehicle) = server_with_vehicle();
        // A truck with a different model name and only one ECU.
        let truck = VehicleId::new("VIN-2");
        server
            .register_vehicle(
                truck.clone(),
                HwConf::new().with_ecu(EcuId::new(1), 64),
                SystemSwConf::new("truck"),
            )
            .unwrap();
        server.bind_vehicle(&user, &truck).unwrap();
        let err = server
            .deploy(&user, &truck, &AppId::new("remote-control"))
            .unwrap_err();
        assert!(matches!(err, DynarError::Incompatible(_)));
        assert!(err.is_deployment_rejection());
    }

    #[test]
    fn memory_requirement_is_checked() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let mut app = remote_control_app();
        app.id = AppId::new("heavy");
        app.sw_confs[0].min_memory_kb = 100_000;
        server.upload_app(app).unwrap();
        let err = server
            .deploy(&user, &vehicle, &AppId::new("heavy"))
            .unwrap_err();
        assert!(matches!(err, DynarError::Incompatible(_)));
    }

    #[test]
    fn deploy_pushes_packages_and_acks_complete_installation() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        let pushed = server.deploy(&user, &vehicle, &app).unwrap();
        assert_eq!(pushed, 2);
        assert_eq!(server.poll_downlink(&vehicle).len(), 2);
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Pending { .. }
        ));

        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Installed
        );
        assert_eq!(server.installed_apps(&vehicle), vec![app.clone()]);

        // A second deployment of the same app is rejected.
        assert!(server.deploy(&user, &vehicle, &app).is_err());
    }

    #[test]
    fn failed_acks_mark_the_deployment_failed() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack(
                    "OP",
                    "remote-control",
                    2,
                    AckStatus::Failed("no memory".into()),
                ),
            )
            .unwrap();
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Failed(reason) if reason.contains("no memory")
        ));
        assert!(server.installed_apps(&vehicle).is_empty());
    }

    #[test]
    fn dependencies_and_conflicts_are_enforced() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let base = AppId::new("remote-control");

        let dependent = AppDefinition::new(AppId::new("autopark"))
            .with_dependency(base.clone())
            .with_plugin(PluginArtifact {
                id: PluginId::new("PARK"),
                binary: binary("PARK"),
                ports: vec![],
            })
            .with_sw_conf(
                SwConf::new("model-car").with_placement(PluginId::new("PARK"), EcuId::new(2)),
            );
        let conflicting = AppDefinition::new(AppId::new("race-mode"))
            .with_conflict(base.clone())
            .with_plugin(PluginArtifact {
                id: PluginId::new("RACE"),
                binary: binary("RACE"),
                ports: vec![],
            })
            .with_sw_conf(
                SwConf::new("model-car").with_placement(PluginId::new("RACE"), EcuId::new(2)),
            );
        server.upload_app(dependent).unwrap();
        server.upload_app(conflicting).unwrap();

        // Dependency missing: autopark needs remote-control first.
        assert!(matches!(
            server
                .deploy(&user, &vehicle, &AppId::new("autopark"))
                .unwrap_err(),
            DynarError::MissingDependency { .. }
        ));

        // Install the base app.
        server.deploy(&user, &vehicle, &base).unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();

        // Now the dependent app deploys, and the conflicting one is rejected.
        server
            .deploy(&user, &vehicle, &AppId::new("autopark"))
            .unwrap();
        server
            .process_uplink(&vehicle, &ack("PARK", "autopark", 2, AckStatus::Installed))
            .unwrap();
        assert!(matches!(
            server
                .deploy(&user, &vehicle, &AppId::new("race-mode"))
                .unwrap_err(),
            DynarError::PluginConflict { .. }
        ));

        // Uninstalling the base app is blocked while autopark depends on it.
        assert!(matches!(
            server.uninstall(&user, &vehicle, &base).unwrap_err(),
            DynarError::DependentsExist { .. }
        ));

        // Remove the dependent first, then the base app.
        server
            .uninstall(&user, &vehicle, &AppId::new("autopark"))
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("PARK", "autopark", 2, AckStatus::Uninstalled),
            )
            .unwrap();
        let pushed = server.uninstall(&user, &vehicle, &base).unwrap();
        assert_eq!(pushed, 2);
    }

    #[test]
    fn port_ids_stay_unique_across_successive_installs() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let base = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &base).unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();

        // A second app placed on ECU 2 must not reuse P0-P3.
        let extra = AppDefinition::new(AppId::new("logger"))
            .with_plugin(PluginArtifact {
                id: PluginId::new("LOG"),
                binary: binary("LOG"),
                ports: vec![PluginPortDecl {
                    name: "speed_tap".into(),
                    direction: PluginPortDirection::Required,
                }],
            })
            .with_sw_conf(
                SwConf::new("model-car")
                    .with_placement(PluginId::new("LOG"), EcuId::new(2))
                    .with_connection(
                        PluginId::new("LOG"),
                        "speed_tap",
                        ConnectionDecl::VirtualPort {
                            name: "SpeedReq".into(),
                        },
                    ),
            );
        server.upload_app(extra).unwrap();
        let packages = server
            .plan_deployment(&vehicle, &AppId::new("logger"))
            .unwrap();
        let pic = &packages[0].1.context.pic;
        assert_eq!(
            pic.ports()[0].id,
            PluginPortId::new(4),
            "continues after P0-P3"
        );
    }

    #[test]
    fn restore_repushes_packages_for_a_replaced_ecu() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let base = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &base).unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        server.poll_downlink(&vehicle);

        let pushed = server.restore(&vehicle, EcuId::new(2)).unwrap();
        assert_eq!(pushed, 1, "only the OP plug-in lived on ECU2");
        assert_eq!(server.poll_downlink(&vehicle).len(), 1);
        assert_eq!(server.restore(&vehicle, EcuId::new(7)).unwrap(), 0);
    }

    #[test]
    fn ownership_is_required_for_deploy_and_uninstall() {
        let (mut server, _user, vehicle) = server_with_vehicle();
        let mallory = UserId::new("mallory");
        server.create_user(mallory.clone()).unwrap();
        assert!(server
            .deploy(&mallory, &vehicle, &AppId::new("remote-control"))
            .is_err());
    }

    #[test]
    fn unacked_packages_are_retransmitted_with_the_same_sequence_id() {
        let (mut server, user, vehicle) = server_with_vehicle();
        server.set_retry_policy(RetryPolicy {
            ack_deadline_ticks: 10,
            max_attempts: 3,
        });
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        let first: Vec<_> = server.poll_downlink(&vehicle);
        assert_eq!(first.len(), 2);

        // Before the deadline nothing moves.
        assert!(server.tick(dynar_foundation::time::Tick::new(9)).is_empty());
        assert!(server.poll_downlink(&vehicle).is_empty());

        // At the deadline both packages are pushed again, byte-identical
        // (same sequence ids), so the ECM can deduplicate.
        assert!(server
            .tick(dynar_foundation::time::Tick::new(10))
            .is_empty());
        let retried = server.poll_downlink(&vehicle);
        assert_eq!(retried, first);
        assert_eq!(server.outstanding_count(&vehicle), 2);
    }

    #[test]
    fn acks_settle_the_outstanding_state() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        server.poll_downlink(&vehicle);
        assert_eq!(server.outstanding_count(&vehicle), 2);
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(server.outstanding_count(&vehicle), 1);
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(server.outstanding_count(&vehicle), 0);
        // Once acked, deadlines can come and go without retransmissions.
        assert!(server
            .tick(dynar_foundation::time::Tick::new(1000))
            .is_empty());
        assert!(server.poll_downlink(&vehicle).is_empty());
    }

    #[test]
    fn exhausted_retries_escalate_into_a_typed_failure() {
        let (mut server, user, vehicle) = server_with_vehicle();
        server.set_retry_policy(RetryPolicy {
            ack_deadline_ticks: 5,
            max_attempts: 2,
        });
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        assert_eq!(server.retry_horizon_ticks(), 10);

        // One ack arrives; the other package dies on the link forever.
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();

        // First deadline: retransmission (attempt 2 of 2).
        assert!(server.tick(dynar_foundation::time::Tick::new(5)).is_empty());
        // Second deadline: the budget is spent — escalate.
        let failures = server.tick(dynar_foundation::time::Tick::new(10));
        assert_eq!(failures.len(), 1);
        let failure = &failures[0];
        assert_eq!(failure.vehicle, vehicle);
        assert_eq!(failure.app, app);
        assert_eq!(failure.plugin, PluginId::new("OP"));
        assert!(matches!(
            failure.error,
            DynarError::RetryExhausted { attempts: 2, .. }
        ));

        // The operation resolves as failed — no silent hang, no pending op.
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Failed(reason) if reason.contains("retry budget exhausted")
        ));
        assert!(server.pending_operations(&vehicle).is_empty());
        assert_eq!(server.outstanding_count(&vehicle), 0);
        assert!(server.installed_apps(&vehicle).is_empty());

        // The failure is not sticky: a fresh deploy is accepted.
        server.deploy(&user, &vehicle, &app).unwrap();
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Pending { .. }
        ));
    }

    /// Regression: the ECM's own failure acks (e.g. "no route to ECU")
    /// carry an empty app id.  They must settle both the outstanding
    /// retransmission state *and* the pending operation — clearing only the
    /// former would leave the operation pending forever with nothing left
    /// to retransmit or escalate.
    #[test]
    fn empty_app_failure_acks_resolve_the_pending_operation() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();

        // The ECM reports it cannot reach OP's ECU, without knowing the app.
        server
            .process_uplink(
                &vehicle,
                &ack(
                    "OP",
                    "",
                    1,
                    AckStatus::Failed("ECM has no route to ECU2".into()),
                ),
            )
            .unwrap();

        assert_eq!(server.outstanding_count(&vehicle), 0);
        assert!(server.pending_operations(&vehicle).is_empty(), "no hang");
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Failed(reason) if reason.contains("no route")
        ));
        // Nothing left to retransmit at any later deadline.
        assert!(server
            .tick(dynar_foundation::time::Tick::new(1000))
            .is_empty());
    }

    #[test]
    fn sequence_ids_increase_monotonically_per_vehicle() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        let seqs: Vec<u64> = server
            .poll_downlink(&vehicle)
            .iter()
            .map(|bytes| DownlinkEnvelope::from_bytes(bytes).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1]);

        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        server.uninstall(&user, &vehicle, &app).unwrap();
        let seqs: Vec<u64> = server
            .poll_downlink(&vehicle)
            .iter()
            .map(|bytes| DownlinkEnvelope::from_bytes(bytes).unwrap().seq)
            .collect();
        assert_eq!(seqs.len(), 2);
        assert!(seqs.iter().all(|&s| s >= 2), "fresh ids, never reused");
    }

    #[test]
    fn uplink_must_be_an_ack() {
        let (mut server, _user, vehicle) = server_with_vehicle();
        let not_ack = ManagementMessage::Stop {
            plugin: PluginId::new("COM"),
        }
        .to_bytes();
        assert!(server.process_uplink(&vehicle, &not_ack).is_err());
        assert!(server.process_uplink(&vehicle, &[1, 2]).is_err());
    }

    fn tick(n: u64) -> dynar_foundation::time::Tick {
        dynar_foundation::time::Tick::new(n)
    }

    fn state_report(epoch: u32, plugins: Vec<(&str, &str, u16)>) -> Vec<u8> {
        ManagementMessage::StateReport {
            boot_epoch: epoch,
            plugins: plugins
                .into_iter()
                .map(|(plugin, app, ecu)| (PluginId::new(plugin), AppId::new(app), EcuId::new(ecu)))
                .collect(),
        }
        .to_bytes()
    }

    /// Regression (satellite): a `Failed` deployment record must never be
    /// terminal.  After a partial failure — one plug-in acknowledged, the
    /// other's retry budget exhausted — re-issuing the install must clear the
    /// stale record, produce a fresh `Pending` operation and converge once
    /// the vehicle acknowledges (the vehicle-side management path replaces
    /// the half-installed plug-in instead of rejecting a duplicate).
    #[test]
    fn redeploy_after_a_partial_retry_failure_yields_a_fresh_pending_op() {
        let (mut server, user, vehicle) = server_with_vehicle();
        server.set_retry_policy(RetryPolicy {
            ack_deadline_ticks: 5,
            max_attempts: 2,
        });
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();

        // COM installs fine; OP's link is dead until the budget runs out.
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server.tick(tick(5));
        let failures = server.tick(tick(10));
        assert_eq!(failures.len(), 1);
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Failed(_)
        ));

        // Re-issuing the install clears the stale failure and goes Pending.
        server.deploy(&user, &vehicle, &app).unwrap();
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Pending { .. }
        ));

        // Both plug-ins acknowledge (COM as a replacement install) and the
        // operation converges — the earlier failure left nothing sticky.
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Installed
        );
        assert_eq!(server.outstanding_count(&vehicle), 0);
    }

    /// Regression (satellite): with the vehicle's endpoint gone, the server
    /// used to keep retransmitting until the budget exhausted with a
    /// misleading "retry budget exhausted" reason.  Parking the vehicle
    /// freezes the deadlines; bringing it back re-arms them and converges.
    #[test]
    fn offline_vehicles_park_instead_of_burning_the_retry_budget() {
        let (mut server, user, vehicle) = server_with_vehicle();
        server.set_retry_policy(RetryPolicy {
            ack_deadline_ticks: 10,
            max_attempts: 3,
        });
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        server.poll_downlink(&vehicle);

        server.mark_offline(&vehicle);
        assert!(!server.is_online(&vehicle));
        // Far past the whole retry horizon: nothing escalates, nothing moves.
        assert!(server.tick(tick(1_000)).is_empty());
        assert!(server.poll_downlink(&vehicle).is_empty(), "queue is parked");
        assert_eq!(server.outstanding_count(&vehicle), 2);
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Pending { .. }
        ));

        // Back online (same epoch): deadlines re-arm relative to now and the
        // packages retransmit with their original sequence ids.
        server.mark_online(&vehicle, 0);
        assert!(server.is_online(&vehicle));
        assert!(server.tick(tick(1_010)).is_empty());
        let retried = server.poll_downlink(&vehicle);
        assert_eq!(retried.len(), 2);
        let seqs: Vec<u64> = retried
            .iter()
            .map(|bytes| DownlinkEnvelope::from_bytes(bytes).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1], "same ids — the gateway deduplicates");
    }

    /// Regression (satellite): a permanently removed vehicle fails fast with
    /// the distinct `VehicleUnreachable` reason instead of burning the retry
    /// budget and reporting "retry budget exhausted".
    #[test]
    fn unreachable_vehicles_fail_fast_with_a_distinct_reason() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();

        let failures = server.mark_unreachable(&vehicle);
        assert_eq!(failures.len(), 2);
        assert!(failures
            .iter()
            .all(|f| matches!(f.error, DynarError::VehicleUnreachable { .. })));
        assert!(server.pending_operations(&vehicle).is_empty());
        assert_eq!(server.outstanding_count(&vehicle), 0);
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Failed(reason) if reason.contains("unreachable")
        ));
        // Nothing left to retransmit or escalate at any later tick.
        assert!(server.tick(tick(10_000)).is_empty());
        assert!(server.poll_downlink(&vehicle).is_empty());
    }

    #[test]
    fn desired_state_reconciliation_converges_up_and_down() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");

        // Declaring the app pushes its packages and goes Pending.
        let pushed = server.set_desired(&user, &vehicle, &app).unwrap();
        assert_eq!(pushed, 2);
        assert_eq!(server.desired_manifest(&vehicle), vec![app.clone()]);
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Pending { .. }
        ));
        // Re-declaring while in flight is a no-op.
        assert_eq!(server.set_desired(&user, &vehicle, &app).unwrap(), 0);

        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Installed
        );
        // Declaring an installed app pushes nothing.
        assert_eq!(server.set_desired(&user, &vehicle, &app).unwrap(), 0);

        // Withdrawing it reconciles down to an uninstall.
        let pushed = server.clear_desired(&user, &vehicle, &app).unwrap();
        assert_eq!(pushed, 2);
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Uninstalled),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Uninstalled),
            )
            .unwrap();
        assert_eq!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::NotInstalled
        );
        assert!(server.desired_manifest(&vehicle).is_empty());
    }

    /// The reboot-recovery path: a state report with a newer boot epoch voids
    /// the old epoch's bookkeeping (the ECM's volatile state is gone) and the
    /// reconciliation re-issues the manifest under the new epoch.
    #[test]
    fn a_rebooted_vehicles_state_report_resyncs_and_reinstalls() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        server.poll_downlink(&vehicle);
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Installed
        );

        // The vehicle reboots and announces an empty epoch-1 inventory.
        server.mark_offline(&vehicle);
        server
            .process_uplink(&vehicle, &state_report(1, vec![]))
            .unwrap();
        assert!(server.is_online(&vehicle));
        assert_eq!(server.vehicle_boot_epoch(&vehicle), Some(1));
        assert!(
            matches!(
                server.deployment_status(&vehicle, &app),
                DeploymentStatus::Pending { .. }
            ),
            "the manifest re-issues the install from truth"
        );
        let downlinks = server.poll_downlink(&vehicle);
        assert_eq!(downlinks.len(), 2);
        for bytes in &downlinks {
            let envelope = DownlinkEnvelope::from_bytes(bytes).unwrap();
            assert_eq!(envelope.boot_epoch, 1, "stamped with the new epoch");
        }

        // A stale epoch-0 report straggling in afterwards changes nothing.
        server
            .process_uplink(&vehicle, &state_report(0, vec![]))
            .unwrap();
        assert_eq!(server.vehicle_boot_epoch(&vehicle), Some(1));
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Pending { .. }
        ));
    }

    /// Plug-ins the vehicle reports but nothing accounts for (their app is
    /// neither desired, observed nor in flight) are orphans: the resync
    /// pushes tracked uninstalls so the vehicle converges *down* to the
    /// manifest too.
    #[test]
    fn orphan_plugins_in_a_state_report_are_uninstalled() {
        let (mut server, _user, vehicle) = server_with_vehicle();
        server
            .process_uplink(
                &vehicle,
                &state_report(0, vec![("GHOST", "retired-app", 2)]),
            )
            .unwrap();
        assert_eq!(server.outstanding_count(&vehicle), 1);
        let downlinks = server.poll_downlink(&vehicle);
        assert_eq!(downlinks.len(), 1);
        let envelope = DownlinkEnvelope::from_bytes(&downlinks[0]).unwrap();
        assert_eq!(envelope.target, EcuId::new(2));
        assert!(matches!(
            envelope.message,
            ManagementMessage::Uninstall { plugin } if plugin == PluginId::new("GHOST")
        ));

        // The vehicle confirms; the orphan bookkeeping settles.
        server
            .process_uplink(
                &vehicle,
                &ack("GHOST", "retired-app", 2, AckStatus::Uninstalled),
            )
            .unwrap();
        assert_eq!(server.outstanding_count(&vehicle), 0);
    }

    /// A rebooted vehicle with nothing desired still needs an own-epoch
    /// downlink, or its gateway re-announces forever: the resync answers an
    /// unsolicited report that produced no downlink with a state-report
    /// request (whose reply is marked solicited, so this cannot ping-pong).
    #[test]
    fn an_empty_resync_confirms_the_epoch_with_a_request() {
        let (mut server, _user, vehicle) = server_with_vehicle();
        server
            .process_uplink(&vehicle, &state_report(1, vec![]))
            .unwrap();
        let downlinks = server.poll_downlink(&vehicle);
        assert_eq!(downlinks.len(), 1, "exactly the confirmation request");
        let envelope = DownlinkEnvelope::from_bytes(&downlinks[0]).unwrap();
        assert_eq!(envelope.boot_epoch, 1, "carries the new epoch");
        assert!(matches!(
            envelope.message,
            ManagementMessage::StateReportRequest
        ));

        // The gateway's reply is solicited: no further request is queued.
        server
            .process_uplink(&vehicle, &state_report(1, vec![]))
            .unwrap();
        assert!(server.poll_downlink(&vehicle).is_empty(), "no ping-pong");

        // The next *unsolicited* announce (a lost confirmation makes the
        // gateway retry) is answered again.
        server
            .process_uplink(&vehicle, &state_report(1, vec![]))
            .unwrap();
        assert_eq!(server.poll_downlink(&vehicle).len(), 1);
    }

    /// An epoch bump voids old-epoch failure outcomes along with the rest of
    /// the bookkeeping: a non-desired app whose uninstall retry-exhausted
    /// before the reboot must not stay `Failed` forever on a vehicle that
    /// demonstrably no longer has it.
    #[test]
    fn a_reboot_clears_stale_failure_records() {
        let (mut server, user, vehicle) = server_with_vehicle();
        server.set_retry_policy(RetryPolicy {
            ack_deadline_ticks: 5,
            max_attempts: 1,
        });
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        // The uninstall dies on the link and the app is no longer desired.
        server.uninstall(&user, &vehicle, &app).unwrap();
        assert!(!server.tick(tick(100)).is_empty());
        assert!(matches!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::Failed(_)
        ));

        // The vehicle reboots with an empty inventory: the stale failure is
        // void — the plug-ins are gone with the old epoch.
        server
            .process_uplink(&vehicle, &state_report(1, vec![]))
            .unwrap();
        assert_eq!(
            server.deployment_status(&vehicle, &app),
            DeploymentStatus::NotInstalled
        );
    }

    #[test]
    fn state_report_requests_are_queued_towards_the_ecm() {
        let (mut server, _user, vehicle) = server_with_vehicle();
        server.request_state_report(&vehicle).unwrap();
        let downlinks = server.poll_downlink(&vehicle);
        assert_eq!(downlinks.len(), 1);
        let envelope = DownlinkEnvelope::from_bytes(&downlinks[0]).unwrap();
        assert_eq!(envelope.target, EcuId::new(1), "addressed to the ECM ECU");
        assert!(matches!(
            envelope.message,
            ManagementMessage::StateReportRequest
        ));
        assert!(server
            .request_state_report(&VehicleId::new("ghost"))
            .is_err());
    }

    // ------------------------------------------------------------------
    // Durability plane
    // ------------------------------------------------------------------

    /// A state-transition workout touching every journaled code path:
    /// pushes, acks, retransmissions, park/unpark, resync, a failing call.
    fn durability_workout(server: &mut TrustedServer, user: &UserId, vehicle: &VehicleId) {
        let app = AppId::new("remote-control");
        server.deploy(user, vehicle, &app).unwrap();
        let _ = server.poll_downlink(vehicle);
        server
            .process_uplink(
                vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        let _ = server.tick(Tick::new(25));
        let _ = server.poll_downlink(vehicle);
        server.mark_offline(vehicle);
        server.mark_online(vehicle, 0);
        server
            .process_uplink(
                vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                vehicle,
                &state_report(
                    0,
                    vec![("COM", "remote-control", 1), ("OP", "remote-control", 2)],
                ),
            )
            .unwrap();
        // A rejected command is journaled too: replay reproduces the same
        // rejection, changing nothing — a failure replays for free.
        assert!(server.deploy(user, vehicle, &app).is_err());
        let _ = server.restore(vehicle, EcuId::new(2));
        let _ = server.poll_downlink(vehicle);
        let _ = server.tick(Tick::new(26));
    }

    #[test]
    fn journal_replay_reconstructs_the_server_byte_for_byte() {
        let (mut server, user, vehicle) = server_with_vehicle();
        server.enable_journal(1024);
        durability_workout(&mut server, &user, &vehicle);

        let replayed = TrustedServer::replay(server.journal_bytes().unwrap()).unwrap();
        assert_eq!(replayed.snapshot_bytes(), server.snapshot_bytes());
        assert_eq!(replayed.ledger(), server.ledger());
        assert_eq!(
            replayed.installed_apps(&vehicle),
            vec![AppId::new("remote-control")]
        );
    }

    #[test]
    fn journal_compaction_preserves_replay_identity() {
        let (mut server, user, vehicle) = server_with_vehicle();
        // An aggressive interval forces several compactions mid-workout.
        server.enable_journal(2);
        durability_workout(&mut server, &user, &vehicle);

        let replayed = TrustedServer::replay(server.journal_bytes().unwrap()).unwrap();
        assert_eq!(replayed.snapshot_bytes(), server.snapshot_bytes());
        assert_eq!(replayed.ledger(), server.ledger());
    }

    #[test]
    fn journaling_can_start_mid_life() {
        let (mut server, user, vehicle) = server_with_vehicle();
        // Pre-journal history lands in the seed snapshot, not in records.
        server
            .deploy(&user, &vehicle, &AppId::new("remote-control"))
            .unwrap();
        server.enable_journal(1024);
        let _ = server.poll_downlink(&vehicle);
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();

        let replayed = TrustedServer::replay(server.journal_bytes().unwrap()).unwrap();
        assert_eq!(replayed.snapshot_bytes(), server.snapshot_bytes());
    }

    #[test]
    fn corrupted_journals_are_typed_errors_not_panics() {
        let (mut server, user, vehicle) = server_with_vehicle();
        server.enable_journal(1024);
        durability_workout(&mut server, &user, &vehicle);
        let mut bytes = server.journal_bytes().unwrap().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            TrustedServer::replay(&bytes),
            Err(DynarError::ProtocolViolation(_))
        ));
        assert!(matches!(
            TrustedServer::replay(&bytes[..bytes.len() - 4]),
            Err(DynarError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn file_journal_survives_a_torn_tail() {
        let path = std::env::temp_dir().join(format!(
            "dynar-journal-torn-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let (mut server, user, vehicle) = server_with_vehicle();
        // fsync every 4 appends: the batched path and the unsynced tail are
        // both exercised by the workout.
        server.enable_journal_file(&path, 1024, 4).unwrap();
        durability_workout(&mut server, &user, &vehicle);

        // The mirrored file replays to the same bytes as the in-memory
        // journal.
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, server.journal_bytes().unwrap());
        let (recovered, clean) = TrustedServer::replay_recover(&on_disk, 1).unwrap();
        assert_eq!(clean, on_disk.len());
        assert_eq!(recovered.snapshot_bytes(), server.snapshot_bytes());

        // Crash mid-append: the tail frame is half-written.  Recovery
        // replays the clean prefix and reports where it ends.
        let torn = &on_disk[..on_disk.len() - 3];
        let (recovered, clean) = TrustedServer::replay_recover(torn, 1).unwrap();
        assert!(clean < torn.len());
        let (clean_server, reclean) = TrustedServer::replay_recover(&on_disk[..clean], 1).unwrap();
        assert_eq!(reclean, clean, "the clean prefix is wholly intact");
        assert_eq!(recovered.snapshot_bytes(), clean_server.snapshot_bytes());

        // An intact-but-malformed frame is corruption, not a torn tail.
        let mut corrupted = Vec::new();
        dynar_foundation::journal::append_frame(&mut corrupted, &[0xFF, 0xFE]);
        assert!(matches!(
            TrustedServer::replay_recover(&corrupted, 1),
            Err(DynarError::ProtocolViolation(_))
        ));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_journal_compaction_rewrites_atomically() {
        let path = std::env::temp_dir().join(format!(
            "dynar-journal-compact-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let (mut server, user, vehicle) = server_with_vehicle();
        // Interval 2 forces several compactions (file rewrites) mid-workout.
        server.enable_journal_file(&path, 2, 1).unwrap();
        durability_workout(&mut server, &user, &vehicle);

        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, server.journal_bytes().unwrap());
        let (recovered, _) = TrustedServer::replay_recover(&on_disk, 1).unwrap();
        assert_eq!(recovered.snapshot_bytes(), server.snapshot_bytes());
        assert!(
            !path.with_extension("log.compact").exists(),
            "compaction temp files are renamed away"
        );

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retransmissions_do_not_double_count_pushes() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        assert_eq!(server.ledger().installs_pushed, 2);

        let _ = server.tick(Tick::new(25));
        assert_eq!(server.ledger().retransmissions, 2);
        assert_eq!(
            server.ledger().installs_pushed,
            2,
            "a retransmission is not a push"
        );

        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(server.ledger().installs_completed, 1);
        assert_eq!(server.ledger().operations_failed, 0);

        // A duplicate ack (the gateway's dedup window replays them on
        // retransmitted downlinks) settles nothing twice.
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(server.ledger().installs_completed, 1);
    }

    #[test]
    fn epoch_voided_operations_settle_once_under_the_new_epoch() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        assert_eq!(server.ledger().installs_pushed, 2);

        // The vehicle reboots mid-install: the pending operation is voided —
        // neither completed nor failed — and the manifest re-pushes under
        // the new epoch as a *new* push, not a retry.
        server
            .process_uplink(&vehicle, &state_report(1, vec![]))
            .unwrap();
        assert_eq!(server.ledger().operations_voided, 1);
        assert_eq!(server.ledger().installs_pushed, 4);
        assert_eq!(server.ledger().resyncs, 1);

        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Installed),
            )
            .unwrap();
        assert_eq!(server.ledger().installs_completed, 1);
        assert_eq!(server.ledger().operations_failed, 0);
    }

    #[test]
    fn begin_incarnation_restamps_every_queued_and_outstanding_downlink() {
        let (mut server, user, vehicle) = server_with_vehicle();
        let app = AppId::new("remote-control");
        server.deploy(&user, &vehicle, &app).unwrap();
        assert_eq!(server.incarnation(), 0);

        assert_eq!(server.begin_incarnation(), 1);
        assert_eq!(server.incarnation(), 1);

        // The queued installs were re-stamped in place and a state-report
        // solicitation was appended, all under the new incarnation.
        let downlinks = server.poll_downlink(&vehicle);
        assert_eq!(downlinks.len(), 3);
        for payload in &downlinks {
            let envelope = DownlinkEnvelope::from_bytes(payload).unwrap();
            assert_eq!(envelope.incarnation, 1);
        }
        assert!(matches!(
            DownlinkEnvelope::from_bytes(&downlinks[2]).unwrap().message,
            ManagementMessage::StateReportRequest
        ));

        // Retransmissions come from the outstanding cache — re-stamped too.
        let failures = server.tick(Tick::new(25));
        assert!(failures.is_empty());
        let retransmitted = server.poll_downlink(&vehicle);
        assert_eq!(retransmitted.len(), 2);
        for payload in &retransmitted {
            let envelope = DownlinkEnvelope::from_bytes(payload).unwrap();
            assert_eq!(envelope.incarnation, 1);
        }
    }

    // Campaign plane --------------------------------------------------------

    use crate::campaign::{HealthGate, WavePlan};

    /// `n` vehicles bound to one user, the remote-control app uploaded.
    fn campaign_fleet(n: usize) -> (TrustedServer, UserId, Vec<VehicleId>) {
        let mut server = TrustedServer::new();
        let user = UserId::new("alice");
        server.create_user(user.clone()).unwrap();
        server.upload_app(remote_control_app()).unwrap();
        let vehicles: Vec<VehicleId> = (0..n)
            .map(|i| VehicleId::new(format!("VIN-{i:03}")))
            .collect();
        for vehicle in &vehicles {
            server
                .register_vehicle(vehicle.clone(), hw_conf(), system_conf())
                .unwrap();
            server.bind_vehicle(&user, vehicle).unwrap();
        }
        (server, user, vehicles)
    }

    fn ack_installed(server: &mut TrustedServer, vehicle: &VehicleId, app: &str) {
        server
            .process_uplink(vehicle, &ack("COM", app, 1, AckStatus::Installed))
            .unwrap();
        server
            .process_uplink(vehicle, &ack("OP", app, 2, AckStatus::Installed))
            .unwrap();
    }

    /// Canary of one, then straight to 100 %; a single failure aborts.
    fn rollout_spec(id: &str) -> CampaignSpec {
        CampaignSpec {
            id: CampaignId::new(id),
            app: AppId::new("remote-control"),
            replaces: None,
            selector: VehicleSelector::All,
            plan: WavePlan {
                canary: 1,
                ramp_percent: vec![100],
            },
            gate: HealthGate {
                min_soak_ticks: 0,
                pause_failed: 0,
                abort_failed: 1,
            },
        }
    }

    #[test]
    fn campaign_waves_advance_on_healthy_acks_and_complete() {
        let (mut server, user, vehicles) = campaign_fleet(3);
        let exposed = server
            .create_campaign(&user, rollout_spec("rollout-1"))
            .unwrap();
        assert_eq!(exposed, 1, "canary wave");
        assert!(server.has_active_campaigns());

        // Unacked canary: the gate holds the rollout (pending > 0).
        assert!(server.step_campaigns().is_empty());

        ack_installed(&mut server, &vehicles[0], "remote-control");
        let events = server.step_campaigns();
        assert!(
            matches!(
                events[..],
                [CampaignEvent::Advanced {
                    wave: 2,
                    exposed: 2,
                    ..
                }]
            ),
            "{events:?}"
        );

        ack_installed(&mut server, &vehicles[1], "remote-control");
        ack_installed(&mut server, &vehicles[2], "remote-control");
        let events = server.step_campaigns();
        assert!(
            matches!(events[..], [CampaignEvent::Completed { succeeded: 3, .. }]),
            "{events:?}"
        );

        let campaign = server.campaign(&CampaignId::new("rollout-1")).unwrap();
        assert_eq!(campaign.status, CampaignStatus::Complete);
        assert_eq!(campaign.counters.exposed, 3);
        assert_eq!(campaign.counters.succeeded, 3);
        assert_eq!(campaign.counters.rolled_back, 0);
        assert!(!server.has_active_campaigns());
        let ledger = server.ledger();
        assert_eq!(ledger.campaign_exposures, 3);
        assert_eq!(ledger.campaigns_completed, 1);
    }

    #[test]
    fn campaign_soak_dwell_holds_the_wave_until_elapsed() {
        let (mut server, user, vehicles) = campaign_fleet(2);
        let mut spec = rollout_spec("rollout-soak");
        spec.gate.min_soak_ticks = 10;
        server.create_campaign(&user, spec).unwrap();
        ack_installed(&mut server, &vehicles[0], "remote-control");

        // Healthy but not soaked: no verdict yet.
        assert!(server.step_campaigns().is_empty());
        let _ = server.tick(Tick::new(10));
        let events = server.step_campaigns();
        assert!(
            matches!(events[..], [CampaignEvent::Advanced { .. }]),
            "{events:?}"
        );
    }

    #[test]
    fn conflicting_duplicate_and_empty_campaigns_are_rejected() {
        let (mut server, user, _vehicles) = campaign_fleet(2);
        server
            .create_campaign(&user, rollout_spec("rollout-1"))
            .unwrap();

        // Same app, overlapping vehicles, both active: typed conflict.
        let err = server
            .create_campaign(&user, rollout_spec("rollout-2"))
            .unwrap_err();
        assert!(matches!(err, DynarError::CampaignConflict { .. }), "{err}");

        // Reused campaign id.
        assert!(matches!(
            server
                .create_campaign(&user, rollout_spec("rollout-1"))
                .unwrap_err(),
            DynarError::Duplicate { .. }
        ));

        // A selector that resolves to no bound vehicles.
        let mut empty = rollout_spec("rollout-empty");
        empty.selector = VehicleSelector::Model("lorry".into());
        assert!(matches!(
            server.create_campaign(&user, empty).unwrap_err(),
            DynarError::InvalidConfiguration(_)
        ));

        // An aborted campaign frees the app for a fresh one.
        server
            .abort_campaign(&user, &CampaignId::new("rollout-1"))
            .unwrap();
        server
            .create_campaign(&user, rollout_spec("rollout-2"))
            .unwrap();
    }

    #[test]
    fn campaign_pause_resume_and_ownership_checks() {
        let (mut server, user, vehicles) = campaign_fleet(2);
        let id = CampaignId::new("rollout-1");
        server
            .create_campaign(&user, rollout_spec("rollout-1"))
            .unwrap();

        // Foreign users cannot drive the campaign.
        let mallory = UserId::new("mallory");
        server.create_user(mallory.clone()).unwrap();
        assert!(server.pause_campaign(&mallory, &id).is_err());

        server.pause_campaign(&user, &id).unwrap();
        assert_eq!(server.campaign(&id).unwrap().status, CampaignStatus::Paused);
        assert!(!server.has_active_campaigns());

        // A paused campaign neither advances nor aborts on its own, and
        // invalid transitions are typed errors.
        ack_installed(&mut server, &vehicles[0], "remote-control");
        assert!(server.step_campaigns().is_empty());
        assert!(server.pause_campaign(&user, &id).is_err());

        server.resume_campaign(&user, &id).unwrap();
        assert_eq!(
            server.campaign(&id).unwrap().status,
            CampaignStatus::Running
        );
        let events = server.step_campaigns();
        assert!(
            matches!(events[..], [CampaignEvent::Advanced { .. }]),
            "{events:?}"
        );
        assert!(server.resume_campaign(&user, &id).is_err());
    }

    #[test]
    fn the_pause_gate_holds_the_rollout_without_rolling_back() {
        let (mut server, user, vehicles) = campaign_fleet(2);
        let mut spec = rollout_spec("rollout-hold");
        spec.gate = HealthGate {
            min_soak_ticks: 0,
            pause_failed: 1,
            abort_failed: 0,
        };
        server.create_campaign(&user, spec).unwrap();
        server
            .process_uplink(
                &vehicles[0],
                &ack("COM", "remote-control", 1, AckStatus::Installed),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicles[0],
                &ack(
                    "OP",
                    "remote-control",
                    2,
                    AckStatus::Failed("no memory".into()),
                ),
            )
            .unwrap();
        let events = server.step_campaigns();
        assert!(
            matches!(events[..], [CampaignEvent::Paused { failed: 1, .. }]),
            "{events:?}"
        );
        let campaign = server.campaign(&CampaignId::new("rollout-hold")).unwrap();
        assert_eq!(campaign.status, CampaignStatus::Paused);
        assert_eq!(campaign.counters.rolled_back, 0);
    }

    /// A one-plugin v2 of the remote-control app (same model).
    fn replacement_v2() -> AppDefinition {
        AppDefinition::new(AppId::new("remote-control-v2"))
            .with_plugin(PluginArtifact {
                id: PluginId::new("OP2"),
                binary: binary("OP2"),
                ports: vec![],
            })
            .with_sw_conf(
                SwConf::new("model-car").with_placement(PluginId::new("OP2"), EcuId::new(2)),
            )
    }

    #[test]
    fn bad_canary_trips_the_abort_gate_and_rolls_back_to_last_good() {
        let (mut server, user, vehicles) = campaign_fleet(1);
        let vehicle = vehicles[0].clone();
        server.upload_app(replacement_v2()).unwrap();
        server
            .deploy(&user, &vehicle, &AppId::new("remote-control"))
            .unwrap();
        ack_installed(&mut server, &vehicle, "remote-control");

        let spec = CampaignSpec {
            id: CampaignId::new("v2-rollout"),
            app: AppId::new("remote-control-v2"),
            replaces: Some(AppId::new("remote-control")),
            selector: VehicleSelector::Vehicles(vec![vehicle.clone()]),
            plan: WavePlan {
                canary: 1,
                ramp_percent: vec![],
            },
            gate: HealthGate {
                min_soak_ticks: 0,
                pause_failed: 0,
                abort_failed: 1,
            },
        };
        assert_eq!(server.create_campaign(&user, spec).unwrap(), 1);

        // The update applies: v1 uninstalls cleanly, v2's plug-in fails.
        server
            .process_uplink(
                &vehicle,
                &ack("COM", "remote-control", 1, AckStatus::Uninstalled),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack("OP", "remote-control", 2, AckStatus::Uninstalled),
            )
            .unwrap();
        server
            .process_uplink(
                &vehicle,
                &ack(
                    "OP2",
                    "remote-control-v2",
                    2,
                    AckStatus::Failed("flash write failed".into()),
                ),
            )
            .unwrap();

        let events = server.step_campaigns();
        assert!(
            matches!(
                events[..],
                [CampaignEvent::Aborted {
                    failed: 1,
                    rolled_back: 1,
                    ..
                }]
            ),
            "{events:?}"
        );
        let campaign = server.campaign(&CampaignId::new("v2-rollout")).unwrap();
        assert_eq!(campaign.status, CampaignStatus::Aborted);
        assert_eq!(campaign.counters.failed, 1);
        assert_eq!(campaign.counters.rolled_back, 1);

        // Rollback is a manifest *restore*: the recorded last-good v1
        // reinstalls through the ordinary reconciliation loop.
        ack_installed(&mut server, &vehicle, "remote-control");
        assert_eq!(
            server.installed_apps(&vehicle),
            vec![AppId::new("remote-control")]
        );
        let ledger = server.ledger();
        assert_eq!(ledger.campaigns_aborted, 1);
        assert_eq!(ledger.campaign_rollbacks, 1);
    }

    #[test]
    fn campaign_decisions_replay_byte_identically() {
        let (mut server, user, vehicles) = campaign_fleet(3);
        server.enable_journal(1024);
        let id = CampaignId::new("rollout-1");
        server
            .create_campaign(&user, rollout_spec("rollout-1"))
            .unwrap();

        // Mid-campaign crash: a successor replays to identical bytes.
        let replayed = TrustedServer::replay(server.journal_bytes().unwrap()).unwrap();
        assert_eq!(replayed.snapshot_bytes(), server.snapshot_bytes());

        // Drive the full decision alphabet through the journal: advance,
        // pause, resume, abort — each a journaled verdict replay re-applies
        // without re-evaluating the gate.
        ack_installed(&mut server, &vehicles[0], "remote-control");
        let _ = server.step_campaigns();
        server.pause_campaign(&user, &id).unwrap();
        server.resume_campaign(&user, &id).unwrap();
        server.abort_campaign(&user, &id).unwrap();

        let replayed = TrustedServer::replay(server.journal_bytes().unwrap()).unwrap();
        assert_eq!(replayed.snapshot_bytes(), server.snapshot_bytes());
        let campaign = replayed.campaign(&id).unwrap();
        assert_eq!(campaign.status, CampaignStatus::Aborted);
        assert_eq!(
            campaign.counters.rolled_back, 3,
            "every exposed vehicle restores, not just the canary"
        );
    }
}
