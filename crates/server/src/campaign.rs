//! Campaign orchestration: staged fleet-wide rollouts over the desired-state
//! plane.
//!
//! A [`Campaign`] targets a set of vehicles (a [`VehicleSelector`] resolved at
//! creation time) with a new application version and advances through
//! **waves**: a canary of [`WavePlan::canary`] vehicles first, then cumulative
//! percentage ramps, each wave rewriting the per-vehicle desired manifests and
//! letting the ordinary reconciliation loop converge them.  A [`HealthGate`]
//! evaluated on every server tick — predicates over acknowledged installs,
//! [`DeploymentStatus::Failed`] counts (which fold in retry exhaustions and
//! the vehicles' own state-report telemetry, since both resolve into the
//! per-vehicle failure records), with a minimum **soak dwell** per wave —
//! decides whether the campaign advances, pauses or aborts.  An abort rewrites
//! every touched vehicle's desired manifest back to the **last-good** set
//! recorded at exposure time, so the rollback converges through the very same
//! reconciliation loop the rollout used (rollback is a manifest restore, *not*
//! a blanket uninstall).
//!
//! Campaign state is first-class in the durability plane: creation and every
//! automatic or manual transition is journaled
//! (`JournalRecord::Campaign{Create,Advance,Pause,Resume,Abort,Complete}`),
//! and the campaigns ride in the canonical snapshot, so
//! [`TrustedServer::replay`] reproduces a mid-campaign server byte-for-byte —
//! at any shard count, because campaigns are serial bookkeeping layered on top
//! of the sharded per-vehicle state.
//!
//! [`DeploymentStatus::Failed`]: crate::server::DeploymentStatus::Failed
//! [`TrustedServer::replay`]: crate::server::TrustedServer::replay

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, UserId, VehicleId};
use dynar_foundation::time::Tick;
use dynar_foundation::value::Value;

/// Identifier of one rollout campaign.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId(String);

impl CampaignId {
    /// Creates a campaign identifier from its unique name.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignId(name.into())
    }

    /// Returns the campaign name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign:{}", self.0)
    }
}

/// Which vehicles a campaign targets.  Resolved once, at creation time,
/// against the registered fleet (restricted to vehicles bound to the creating
/// user); the resolved target list is recorded on the campaign so the wave
/// arithmetic stays stable while the fleet churns underneath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VehicleSelector {
    /// Every vehicle bound to the creating user.
    All,
    /// Every bound vehicle of the given vehicle model
    /// (`SystemSwConf::model`).
    Model(String),
    /// An explicit vehicle list (unknown or unbound vehicles are dropped at
    /// resolution time).
    Vehicles(Vec<VehicleId>),
}

/// How a campaign's exposure grows: an absolute canary first, then
/// cumulative fleet-percentage ramps.  A final 100% wave is implied if the
/// last ramp stops short of the whole target set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavePlan {
    /// Vehicles in the first (canary) wave, clamped to at least 1 and at
    /// most the target-set size.
    pub canary: usize,
    /// Cumulative exposure targets of the following waves, in percent of the
    /// target set (values above 100 are clamped).  Each wave's target is at
    /// least the previous wave's, so exposure never shrinks.
    pub ramp_percent: Vec<u32>,
}

impl WavePlan {
    /// The cumulative number of vehicles exposed once `wave` waves have
    /// been opened, out of `total` targets.  Wave 0 is "nothing exposed
    /// yet"; wave 1 is the canary.
    pub fn cumulative_target(&self, wave: usize, total: usize) -> usize {
        if wave == 0 || total == 0 {
            return 0;
        }
        let mut target = self.canary.clamp(1, total);
        for ramp in self.ramp_percent.iter().take(wave.saturating_sub(1)) {
            let pct = u64::from((*ramp).min(100));
            let ramp_target = usize::try_from((pct * total as u64).div_ceil(100)).unwrap_or(total);
            target = target.max(ramp_target);
        }
        if wave > self.ramp_percent.len() + 1 {
            target = total;
        }
        target.min(total)
    }

    /// The number of waves needed to expose all `total` targets.
    pub fn wave_count(&self, total: usize) -> usize {
        let mut waves = 1;
        while self.cumulative_target(waves, total) < total {
            waves += 1;
        }
        waves
    }
}

impl Default for WavePlan {
    fn default() -> Self {
        WavePlan {
            canary: 1,
            ramp_percent: vec![25, 50, 100],
        }
    }
}

/// The per-wave health predicates evaluated each tick while a campaign runs.
/// Failure counts are taken over *every* vehicle the campaign has exposed so
/// far: a vehicle whose deployment of the campaign app resolved
/// [`DeploymentStatus::Failed`] — by a NACK from the field, by retry
/// exhaustion, or by a state-report resync contradicting the rollout — counts
/// as failed until a later reconciliation round repairs it.
///
/// [`DeploymentStatus::Failed`]: crate::server::DeploymentStatus::Failed
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthGate {
    /// Minimum ticks a wave must soak (all exposed vehicles healthy) before
    /// the campaign may advance to the next wave.
    pub min_soak_ticks: u64,
    /// Pause the campaign once this many exposed vehicles are failed
    /// (0 disables pausing).  A paused campaign holds its exposure until it
    /// is resumed or aborted.
    pub pause_failed: u64,
    /// Abort the campaign — and roll every exposed vehicle back to its
    /// recorded last-good manifest — once this many exposed vehicles are
    /// failed (0 disables auto-abort).
    pub abort_failed: u64,
}

impl Default for HealthGate {
    fn default() -> Self {
        HealthGate {
            min_soak_ticks: 50,
            pause_failed: 0,
            abort_failed: 1,
        }
    }
}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Waves are being exposed and the health gate is evaluated each tick.
    Running,
    /// Exposure is frozen (gate trip or operator request) until the
    /// campaign is resumed or aborted.
    Paused,
    /// The campaign was aborted; every exposed vehicle's desired manifest
    /// was rewritten back to its recorded last-good set.
    Aborted,
    /// Every target converged to the new version.
    Complete,
}

/// Per-campaign accounting.  `rolled_back` counts manifest *restores* — a
/// rollback is not an uninstall: the replaced version returns to the desired
/// manifest and reconciliation reinstalls it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignCounters {
    /// Vehicles whose desired manifest the campaign has rewritten so far.
    pub exposed: u64,
    /// Exposed vehicles whose install of the campaign app was acknowledged
    /// (as of the last journaled campaign transition).
    pub succeeded: u64,
    /// Exposed vehicles whose install of the campaign app is failed (as of
    /// the last journaled campaign transition).
    pub failed: u64,
    /// Vehicles restored to their last-good manifest by an abort.
    pub rolled_back: u64,
}

/// What an operator submits to start a campaign (also the journaled create
/// record's payload — the target resolution replays deterministically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The campaign's unique identifier.
    pub id: CampaignId,
    /// The application version being rolled out.
    pub app: AppId,
    /// The predecessor version removed from each exposed vehicle's desired
    /// manifest (an update campaign), or `None` for a pure install rollout.
    pub replaces: Option<AppId>,
    /// Which vehicles to target.
    pub selector: VehicleSelector,
    /// How exposure grows.
    pub plan: WavePlan,
    /// The health predicates gating each wave.
    pub gate: HealthGate,
}

/// One staged rollout over the desired-state plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// The campaign's unique identifier.
    pub id: CampaignId,
    /// The operator who created the campaign (wave rewrites act with this
    /// user's authority).
    pub user: UserId,
    /// The application version being rolled out.
    pub app: AppId,
    /// The predecessor version removed on exposure, if any.
    pub replaces: Option<AppId>,
    /// The selector the targets were resolved from.
    pub selector: VehicleSelector,
    /// The resolved target vehicles, sorted; wave arithmetic indexes into
    /// this list.
    pub targets: Vec<VehicleId>,
    /// The wave plan.
    pub plan: WavePlan,
    /// The health gate.
    pub gate: HealthGate,
    /// Lifecycle state.
    pub status: CampaignStatus,
    /// Waves opened so far (1 = canary exposed).
    pub wave: usize,
    /// The tick the current wave was opened (soak dwell baseline).
    pub wave_started: Tick,
    /// The last-good desired manifest of every exposed vehicle, recorded the
    /// moment the campaign first touched it — what an abort restores.
    pub last_good: BTreeMap<VehicleId, BTreeSet<AppId>>,
    /// Per-campaign accounting.
    pub counters: CampaignCounters,
}

impl Campaign {
    /// A freshly created campaign with nothing exposed yet.
    pub(crate) fn new(spec: CampaignSpec, user: UserId, targets: Vec<VehicleId>) -> Self {
        Campaign {
            id: spec.id,
            user,
            app: spec.app,
            replaces: spec.replaces,
            selector: spec.selector,
            targets,
            plan: spec.plan,
            gate: spec.gate,
            status: CampaignStatus::Running,
            wave: 0,
            wave_started: Tick::new(0),
            last_good: BTreeMap::new(),
            counters: CampaignCounters::default(),
        }
    }

    /// `true` while the campaign still holds its targets (running or
    /// paused) — the state in which it conflicts with a new campaign over
    /// the same app on overlapping vehicles.
    pub fn is_active(&self) -> bool {
        matches!(
            self.status,
            CampaignStatus::Running | CampaignStatus::Paused
        )
    }
}

/// One campaign transition reported by `TrustedServer::step_campaigns` (the
/// journaled record is the durable form; the event is the driver-facing
/// notification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignEvent {
    /// A new wave was opened.
    Advanced {
        /// The campaign that advanced.
        campaign: CampaignId,
        /// The wave number now open (1 = canary).
        wave: usize,
        /// Vehicles newly exposed by this wave.
        exposed: usize,
    },
    /// The health gate paused the campaign.
    Paused {
        /// The campaign that paused.
        campaign: CampaignId,
        /// Failed vehicles at the time of the pause.
        failed: u64,
    },
    /// The health gate aborted the campaign and rolled the exposed vehicles
    /// back.
    Aborted {
        /// The campaign that aborted.
        campaign: CampaignId,
        /// Failed vehicles at the time of the abort.
        failed: u64,
        /// Vehicles whose manifest was restored.
        rolled_back: usize,
    },
    /// Every target converged; the campaign is complete.
    Completed {
        /// The campaign that completed.
        campaign: CampaignId,
        /// Vehicles that acknowledged the new version.
        succeeded: u64,
    },
}

// ----------------------------------------------------------------------
// Durability-plane value codec
// ----------------------------------------------------------------------
//
// Campaigns ride in the canonical server snapshot and the create record of
// the write-ahead journal; like every other decoder on the recovery path the
// bytes are untrusted and must produce typed errors, never panics.

fn malformed(what: &str) -> DynarError {
    DynarError::ProtocolViolation(format!("malformed campaign encoding: {what}"))
}

fn text(value: &Value, what: &str) -> Result<String> {
    Ok(value.as_text().ok_or_else(|| malformed(what))?.to_owned())
}

fn u64_of(value: &Value, what: &str) -> Result<u64> {
    u64::try_from(value.expect_i64()?).map_err(|_| malformed(what))
}

fn usize_of(value: &Value, what: &str) -> Result<usize> {
    usize::try_from(value.expect_i64()?).map_err(|_| malformed(what))
}

impl VehicleSelector {
    /// Encodes the selector as a [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            VehicleSelector::All => Value::List(vec![Value::I64(0)]),
            VehicleSelector::Model(model) => {
                Value::List(vec![Value::I64(1), Value::Text(model.clone())])
            }
            VehicleSelector::Vehicles(vehicles) => Value::List(vec![
                Value::I64(2),
                Value::List(
                    vehicles
                        .iter()
                        .map(|v| Value::Text(v.vin().to_owned()))
                        .collect(),
                ),
            ]),
        }
    }

    /// Decodes a selector encoded by [`VehicleSelector::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| malformed("selector"))?;
        match parts {
            [tag] if tag.expect_i64()? == 0 => Ok(VehicleSelector::All),
            [tag, model] if tag.expect_i64()? == 1 => {
                Ok(VehicleSelector::Model(text(model, "selector model")?))
            }
            [tag, vehicles] if tag.expect_i64()? == 2 => Ok(VehicleSelector::Vehicles(
                vehicles
                    .as_list()
                    .ok_or_else(|| malformed("selector vehicles"))?
                    .iter()
                    .map(|v| Ok(VehicleId::new(text(v, "selector vin")?)))
                    .collect::<Result<Vec<_>>>()?,
            )),
            _ => Err(malformed("selector tag")),
        }
    }
}

impl WavePlan {
    /// Encodes the wave plan as a [`Value`].
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::I64(self.canary as i64),
            Value::List(
                self.ramp_percent
                    .iter()
                    .map(|p| Value::I64(i64::from(*p)))
                    .collect(),
            ),
        ])
    }

    /// Decodes a plan encoded by [`WavePlan::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let [canary, ramps] = value.as_list().ok_or_else(|| malformed("wave plan"))? else {
            return Err(malformed("wave plan arity"));
        };
        Ok(WavePlan {
            canary: usize_of(canary, "canary size")?,
            ramp_percent: ramps
                .as_list()
                .ok_or_else(|| malformed("ramp list"))?
                .iter()
                .map(|p| u32::try_from(p.expect_i64()?).map_err(|_| malformed("ramp percent")))
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl HealthGate {
    /// Encodes the gate as a [`Value`].
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::I64(self.min_soak_ticks as i64),
            Value::I64(self.pause_failed as i64),
            Value::I64(self.abort_failed as i64),
        ])
    }

    /// Decodes a gate encoded by [`HealthGate::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let [min_soak, pause, abort] = value.as_list().ok_or_else(|| malformed("gate"))? else {
            return Err(malformed("gate arity"));
        };
        Ok(HealthGate {
            min_soak_ticks: u64_of(min_soak, "min soak")?,
            pause_failed: u64_of(pause, "pause threshold")?,
            abort_failed: u64_of(abort, "abort threshold")?,
        })
    }
}

impl CampaignStatus {
    fn to_value(self) -> Value {
        Value::I64(match self {
            CampaignStatus::Running => 0,
            CampaignStatus::Paused => 1,
            CampaignStatus::Aborted => 2,
            CampaignStatus::Complete => 3,
        })
    }

    fn from_value(value: &Value) -> Result<Self> {
        match value.expect_i64()? {
            0 => Ok(CampaignStatus::Running),
            1 => Ok(CampaignStatus::Paused),
            2 => Ok(CampaignStatus::Aborted),
            3 => Ok(CampaignStatus::Complete),
            other => Err(malformed(&format!("unknown status {other}"))),
        }
    }
}

impl CampaignSpec {
    /// Encodes the spec as a [`Value`] (the create record's payload).
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(self.id.name().to_owned()),
            Value::Text(self.app.name().to_owned()),
            match &self.replaces {
                Some(app) => Value::Text(app.name().to_owned()),
                None => Value::Void,
            },
            self.selector.to_value(),
            self.plan.to_value(),
            self.gate.to_value(),
        ])
    }

    /// Decodes a spec encoded by [`CampaignSpec::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let [id, app, replaces, selector, plan, gate] =
            value.as_list().ok_or_else(|| malformed("spec"))?
        else {
            return Err(malformed("spec arity"));
        };
        let replaces = if replaces.is_void() {
            None
        } else {
            Some(AppId::new(text(replaces, "replaced app")?))
        };
        Ok(CampaignSpec {
            id: CampaignId::new(text(id, "campaign id")?),
            app: AppId::new(text(app, "campaign app")?),
            replaces,
            selector: VehicleSelector::from_value(selector)?,
            plan: WavePlan::from_value(plan)?,
            gate: HealthGate::from_value(gate)?,
        })
    }
}

impl Campaign {
    /// Encodes the campaign as a [`Value`] (the snapshot form; every map is
    /// a `BTreeMap`, so the encoding is canonical by construction).
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(self.id.name().to_owned()),
            Value::Text(self.user.name().to_owned()),
            Value::Text(self.app.name().to_owned()),
            match &self.replaces {
                Some(app) => Value::Text(app.name().to_owned()),
                None => Value::Void,
            },
            self.selector.to_value(),
            Value::List(
                self.targets
                    .iter()
                    .map(|v| Value::Text(v.vin().to_owned()))
                    .collect(),
            ),
            self.plan.to_value(),
            self.gate.to_value(),
            self.status.to_value(),
            Value::I64(self.wave as i64),
            Value::I64(self.wave_started.as_u64() as i64),
            Value::List(
                self.last_good
                    .iter()
                    .map(|(vehicle, apps)| {
                        Value::List(vec![
                            Value::Text(vehicle.vin().to_owned()),
                            Value::List(
                                apps.iter()
                                    .map(|a| Value::Text(a.name().to_owned()))
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            ),
            Value::List(vec![
                Value::I64(self.counters.exposed as i64),
                Value::I64(self.counters.succeeded as i64),
                Value::I64(self.counters.failed as i64),
                Value::I64(self.counters.rolled_back as i64),
            ]),
        ])
    }

    /// Decodes a campaign encoded by [`Campaign::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let [id, user, app, replaces, selector, targets, plan, gate, status, wave, wave_started, last_good, counters] =
            value.as_list().ok_or_else(|| malformed("campaign"))?
        else {
            return Err(malformed("campaign arity"));
        };
        let replaces = if replaces.is_void() {
            None
        } else {
            Some(AppId::new(text(replaces, "replaced app")?))
        };
        let targets = targets
            .as_list()
            .ok_or_else(|| malformed("targets"))?
            .iter()
            .map(|v| Ok(VehicleId::new(text(v, "target vin")?)))
            .collect::<Result<Vec<_>>>()?;
        let last_good = last_good
            .as_list()
            .ok_or_else(|| malformed("last-good map"))?
            .iter()
            .map(|pair| {
                let [vehicle, apps] = pair.as_list().ok_or_else(|| malformed("last-good pair"))?
                else {
                    return Err(malformed("last-good pair arity"));
                };
                Ok((
                    VehicleId::new(text(vehicle, "last-good vin")?),
                    apps.as_list()
                        .ok_or_else(|| malformed("last-good apps"))?
                        .iter()
                        .map(|a| Ok(AppId::new(text(a, "last-good app")?)))
                        .collect::<Result<BTreeSet<AppId>>>()?,
                ))
            })
            .collect::<Result<BTreeMap<_, _>>>()?;
        let counters = {
            let [exposed, succeeded, failed, rolled_back] =
                counters.as_list().ok_or_else(|| malformed("counters"))?
            else {
                return Err(malformed("counters arity"));
            };
            CampaignCounters {
                exposed: u64_of(exposed, "exposed counter")?,
                succeeded: u64_of(succeeded, "succeeded counter")?,
                failed: u64_of(failed, "failed counter")?,
                rolled_back: u64_of(rolled_back, "rolled-back counter")?,
            }
        };
        Ok(Campaign {
            id: CampaignId::new(text(id, "campaign id")?),
            user: UserId::new(text(user, "campaign user")?),
            app: AppId::new(text(app, "campaign app")?),
            replaces,
            selector: VehicleSelector::from_value(selector)?,
            targets,
            plan: WavePlan::from_value(plan)?,
            gate: HealthGate::from_value(gate)?,
            status: CampaignStatus::from_value(status)?,
            wave: usize_of(wave, "wave")?,
            wave_started: Tick::new(u64_of(wave_started, "wave start")?),
            last_good,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_campaign() -> Campaign {
        let mut campaign = Campaign::new(
            CampaignSpec {
                id: CampaignId::new("rollout-7"),
                app: AppId::new("telemetry-v2"),
                replaces: Some(AppId::new("telemetry")),
                selector: VehicleSelector::Model("fleet-car".into()),
                plan: WavePlan {
                    canary: 2,
                    ramp_percent: vec![25, 100],
                },
                gate: HealthGate {
                    min_soak_ticks: 30,
                    pause_failed: 2,
                    abort_failed: 3,
                },
            },
            UserId::new("fleet-ops"),
            (0..8)
                .map(|i| VehicleId::new(format!("VIN-{i:04}")))
                .collect(),
        );
        campaign.wave = 2;
        campaign.wave_started = Tick::new(120);
        campaign.status = CampaignStatus::Paused;
        campaign.last_good.insert(
            VehicleId::new("VIN-0000"),
            [AppId::new("telemetry")].into_iter().collect(),
        );
        campaign
            .last_good
            .insert(VehicleId::new("VIN-0001"), BTreeSet::new());
        campaign.counters = CampaignCounters {
            exposed: 2,
            succeeded: 1,
            failed: 1,
            rolled_back: 0,
        };
        campaign
    }

    #[test]
    fn wave_arithmetic_covers_canary_ramps_and_implied_final_wave() {
        let plan = WavePlan {
            canary: 2,
            ramp_percent: vec![25, 50],
        };
        // 50 targets: canary 2, then 13 (25% rounded up), then 25, then an
        // implied final wave to 50.
        assert_eq!(plan.cumulative_target(0, 50), 0);
        assert_eq!(plan.cumulative_target(1, 50), 2);
        assert_eq!(plan.cumulative_target(2, 50), 13);
        assert_eq!(plan.cumulative_target(3, 50), 25);
        assert_eq!(plan.cumulative_target(4, 50), 50);
        assert_eq!(plan.wave_count(50), 4);
        // Exposure never shrinks even when a ramp undercuts the canary.
        let shrinking = WavePlan {
            canary: 10,
            ramp_percent: vec![5, 100],
        };
        assert_eq!(shrinking.cumulative_target(2, 20), 10);
        assert_eq!(shrinking.cumulative_target(3, 20), 20);
        // A single-wave flash crowd: canary covers everything.
        let flash = WavePlan {
            canary: 20,
            ramp_percent: vec![],
        };
        assert_eq!(flash.wave_count(20), 1);
        assert_eq!(flash.cumulative_target(1, 20), 20);
    }

    #[test]
    fn campaign_value_codec_round_trips() {
        let campaign = sample_campaign();
        assert_eq!(
            Campaign::from_value(&campaign.to_value()).unwrap(),
            campaign
        );
        let spec = CampaignSpec {
            id: CampaignId::new("c"),
            app: AppId::new("a"),
            replaces: None,
            selector: VehicleSelector::Vehicles(vec![VehicleId::new("VIN-1")]),
            plan: WavePlan::default(),
            gate: HealthGate::default(),
        };
        assert_eq!(CampaignSpec::from_value(&spec.to_value()).unwrap(), spec);
        let all = VehicleSelector::All;
        assert_eq!(VehicleSelector::from_value(&all.to_value()).unwrap(), all);
    }

    #[test]
    fn campaign_decoders_reject_malformed_values() {
        for decoder in [
            |v: &Value| Campaign::from_value(v).map(|_| ()),
            |v: &Value| CampaignSpec::from_value(v).map(|_| ()),
            |v: &Value| VehicleSelector::from_value(v).map(|_| ()),
            |v: &Value| WavePlan::from_value(v).map(|_| ()),
            |v: &Value| HealthGate::from_value(v).map(|_| ()),
        ] {
            assert!(decoder(&Value::I64(7)).is_err());
            assert!(decoder(&Value::List(vec![Value::Void])).is_err());
        }
        assert!(CampaignStatus::from_value(&Value::I64(9)).is_err());
    }
}
