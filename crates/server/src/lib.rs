//! The trusted server managing the plug-in life cycle off-board.
//!
//! "For security reasons, all plug-in management is done through a
//! pre-defined trusted server ... The server not only serves as a gateway for
//! the plug-in binaries, but it is also responsible for verifying that new
//! plug-ins are compatible with a particular vehicle configuration" (paper
//! §3.2).  This crate reproduces the server of Figure 2:
//!
//! * [`model`] — the data model: `User`, `Vehicle`, `VehicleConf` (hardware
//!   configuration, system software configuration, installed apps), `App`
//!   and `SwConf`;
//! * [`server`] — the [`server::TrustedServer`] itself: the web-service
//!   operations (user setup, uploads, deploy / uninstall / restore), the
//!   compatibility and dependency checks, PIC/PLC/ECC context generation and
//!   the pusher that queues downlink messages per vehicle;
//! * [`baseline`] — the conventional "re-flash the ECU" deployment model the
//!   benchmarks compare against;
//! * [`journal`] / [`ledger`] — the durability plane: a write-ahead journal
//!   of every state transition with periodic snapshot compaction, and the
//!   operation-accounting ledger carried inside the snapshots;
//! * [`campaign`] — fleet-wide rollout orchestration layered on the
//!   desired-state plane: staged waves (canary + percentage ramps), per-tick
//!   health gates, and automatic rollback to recorded last-good manifests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod campaign;
pub mod journal;
pub mod ledger;
pub mod model;
pub mod server;

pub use baseline::ReflashBaseline;
pub use campaign::{
    Campaign, CampaignCounters, CampaignEvent, CampaignId, CampaignSpec, CampaignStatus,
    HealthGate, VehicleSelector, WavePlan,
};
pub use journal::Journal;
pub use ledger::Ledger;
pub use model::{
    AppDefinition, ConnectionDecl, EcuHw, HwConf, Placement, PluginArtifact, PluginPortDecl,
    PluginSwcDecl, PortConnection, SwConf, SystemSwConf, VirtualPortDecl, VirtualPortKindDecl,
};
pub use server::{DeploymentStatus, TrustedServer};
