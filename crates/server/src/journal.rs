//! The trusted server's write-ahead journal: a command log of every state
//! transition, with periodic compaction into full-state snapshots.
//!
//! # Design
//!
//! The journal records the server's **inputs** (the mutating API calls),
//! not its internal effects: replaying the commands through the same
//! deterministic code reconstructs every derived structure — manifests,
//! pending operations, outstanding retransmission state, the ledger —
//! byte-for-byte.  Each record is one [`dynar_foundation::codec`]-encoded
//! value inside a checksummed [`dynar_foundation::journal`] frame.
//!
//! Every [`JournalRecord::COMPACTION_INTERVAL`]-ish records (configured per
//! journal) the buffer is *compacted*: replaced by a single
//! [`JournalRecord::Snapshot`] frame holding the full canonical state, so
//! the journal's size is bounded by the snapshot size plus one compaction
//! interval of records instead of growing with uptime.  Compaction happens
//! *before* the next record is appended, so the snapshot captures the state
//! the pending record applies to — replay is `snapshot ⊕ commands`, in
//! order.

use dynar_foundation::codec;
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, EcuId, UserId, VehicleId};
use dynar_foundation::journal::append_frame;
use dynar_foundation::time::Tick;
use dynar_foundation::value::Value;

use crate::campaign::{CampaignId, CampaignSpec};
use crate::model::{AppDefinition, HwConf, SystemSwConf};
use crate::server::RetryPolicy;

/// One journaled state transition of the trusted server.
///
/// Except for [`JournalRecord::Snapshot`] (the compaction frame), every
/// variant mirrors one mutating `TrustedServer` API call; replay applies
/// them through the same public methods.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JournalRecord {
    /// A full-state snapshot (the compaction frame; always the first frame
    /// of a compacted journal).
    Snapshot(Value),
    /// `create_user`.
    CreateUser(UserId),
    /// `register_vehicle`.
    RegisterVehicle(VehicleId, HwConf, SystemSwConf),
    /// `bind_vehicle`.
    BindVehicle(UserId, VehicleId),
    /// `upload_app`.
    UploadApp(AppDefinition),
    /// `set_retry_policy`.
    SetRetryPolicy(RetryPolicy),
    /// `deploy`.
    Deploy(UserId, VehicleId, AppId),
    /// `uninstall`.
    Uninstall(UserId, VehicleId, AppId),
    /// `restore`.
    Restore(VehicleId, EcuId),
    /// `set_desired`.
    SetDesired(UserId, VehicleId, AppId),
    /// `clear_desired`.
    ClearDesired(UserId, VehicleId, AppId),
    /// `reconcile`.
    Reconcile(VehicleId),
    /// `mark_offline`.
    MarkOffline(VehicleId),
    /// `mark_online` with the reported boot epoch.
    MarkOnline(VehicleId, u32),
    /// `mark_unreachable`.
    MarkUnreachable(VehicleId),
    /// `request_state_report`.
    RequestStateReport(VehicleId),
    /// `tick`.
    Tick(Tick),
    /// `process_uplink` with the raw uplink payload.
    ProcessUplink(VehicleId, Vec<u8>),
    /// `poll_downlink` (journaled only when the drain was non-empty).
    PollDownlink(VehicleId),
    /// `begin_incarnation`.
    BeginIncarnation,
    /// `create_campaign` (the target resolution replays deterministically
    /// from the spec against the fleet state at this record's position).
    CampaignCreate(UserId, CampaignSpec),
    /// A campaign advanced one wave — journaled as the health gate's
    /// *decision*, so replay re-exposes the same wave without re-evaluating
    /// the gate.
    CampaignAdvance(CampaignId),
    /// A campaign paused (gate trip or `pause_campaign`).
    CampaignPause(CampaignId),
    /// `resume_campaign`.
    CampaignResume(CampaignId),
    /// A campaign aborted and rolled its exposed vehicles back (gate trip or
    /// `abort_campaign`).
    CampaignAbort(CampaignId),
    /// Every target converged; the campaign completed.
    CampaignComplete(CampaignId),
}

const TAG_SNAPSHOT: i64 = 0;
const TAG_CREATE_USER: i64 = 1;
const TAG_REGISTER_VEHICLE: i64 = 2;
const TAG_BIND_VEHICLE: i64 = 3;
const TAG_UPLOAD_APP: i64 = 4;
const TAG_SET_RETRY_POLICY: i64 = 5;
const TAG_DEPLOY: i64 = 6;
const TAG_UNINSTALL: i64 = 7;
const TAG_RESTORE: i64 = 8;
const TAG_SET_DESIRED: i64 = 9;
const TAG_CLEAR_DESIRED: i64 = 10;
const TAG_RECONCILE: i64 = 11;
const TAG_MARK_OFFLINE: i64 = 12;
const TAG_MARK_ONLINE: i64 = 13;
const TAG_MARK_UNREACHABLE: i64 = 14;
const TAG_REQUEST_STATE_REPORT: i64 = 15;
const TAG_TICK: i64 = 16;
const TAG_PROCESS_UPLINK: i64 = 17;
const TAG_POLL_DOWNLINK: i64 = 18;
const TAG_BEGIN_INCARNATION: i64 = 19;
const TAG_CAMPAIGN_CREATE: i64 = 20;
const TAG_CAMPAIGN_ADVANCE: i64 = 21;
const TAG_CAMPAIGN_PAUSE: i64 = 22;
const TAG_CAMPAIGN_RESUME: i64 = 23;
const TAG_CAMPAIGN_ABORT: i64 = 24;
const TAG_CAMPAIGN_COMPLETE: i64 = 25;

fn malformed(what: &str) -> DynarError {
    DynarError::ProtocolViolation(format!("malformed journal record: {what}"))
}

fn text<'a>(value: &'a Value, what: &str) -> Result<&'a str> {
    value.as_text().ok_or_else(|| malformed(what))
}

impl JournalRecord {
    /// Encodes the record as a `[tag, ...fields]` list.
    pub(crate) fn to_value(&self) -> Value {
        let user_vehicle_app = |tag: i64, user: &UserId, vehicle: &VehicleId, app: &AppId| {
            Value::List(vec![
                Value::I64(tag),
                Value::Text(user.name().to_owned()),
                Value::Text(vehicle.vin().to_owned()),
                Value::Text(app.name().to_owned()),
            ])
        };
        let vehicle_only = |tag: i64, vehicle: &VehicleId| {
            Value::List(vec![Value::I64(tag), Value::Text(vehicle.vin().to_owned())])
        };
        let campaign_only = |tag: i64, campaign: &CampaignId| {
            Value::List(vec![
                Value::I64(tag),
                Value::Text(campaign.name().to_owned()),
            ])
        };
        match self {
            JournalRecord::Snapshot(state) => {
                Value::List(vec![Value::I64(TAG_SNAPSHOT), state.clone()])
            }
            JournalRecord::CreateUser(user) => Value::List(vec![
                Value::I64(TAG_CREATE_USER),
                Value::Text(user.name().to_owned()),
            ]),
            JournalRecord::RegisterVehicle(vehicle, hw, system) => Value::List(vec![
                Value::I64(TAG_REGISTER_VEHICLE),
                Value::Text(vehicle.vin().to_owned()),
                hw.to_value(),
                system.to_value(),
            ]),
            JournalRecord::BindVehicle(user, vehicle) => Value::List(vec![
                Value::I64(TAG_BIND_VEHICLE),
                Value::Text(user.name().to_owned()),
                Value::Text(vehicle.vin().to_owned()),
            ]),
            JournalRecord::UploadApp(app) => {
                Value::List(vec![Value::I64(TAG_UPLOAD_APP), app.to_value()])
            }
            JournalRecord::SetRetryPolicy(policy) => Value::List(vec![
                Value::I64(TAG_SET_RETRY_POLICY),
                Value::I64(policy.ack_deadline_ticks as i64),
                Value::I64(i64::from(policy.max_attempts)),
            ]),
            JournalRecord::Deploy(user, vehicle, app) => {
                user_vehicle_app(TAG_DEPLOY, user, vehicle, app)
            }
            JournalRecord::Uninstall(user, vehicle, app) => {
                user_vehicle_app(TAG_UNINSTALL, user, vehicle, app)
            }
            JournalRecord::Restore(vehicle, ecu) => Value::List(vec![
                Value::I64(TAG_RESTORE),
                Value::Text(vehicle.vin().to_owned()),
                Value::I64(i64::from(ecu.index())),
            ]),
            JournalRecord::SetDesired(user, vehicle, app) => {
                user_vehicle_app(TAG_SET_DESIRED, user, vehicle, app)
            }
            JournalRecord::ClearDesired(user, vehicle, app) => {
                user_vehicle_app(TAG_CLEAR_DESIRED, user, vehicle, app)
            }
            JournalRecord::Reconcile(vehicle) => vehicle_only(TAG_RECONCILE, vehicle),
            JournalRecord::MarkOffline(vehicle) => vehicle_only(TAG_MARK_OFFLINE, vehicle),
            JournalRecord::MarkOnline(vehicle, boot_epoch) => Value::List(vec![
                Value::I64(TAG_MARK_ONLINE),
                Value::Text(vehicle.vin().to_owned()),
                Value::I64(i64::from(*boot_epoch)),
            ]),
            JournalRecord::MarkUnreachable(vehicle) => vehicle_only(TAG_MARK_UNREACHABLE, vehicle),
            JournalRecord::RequestStateReport(vehicle) => {
                vehicle_only(TAG_REQUEST_STATE_REPORT, vehicle)
            }
            JournalRecord::Tick(now) => {
                Value::List(vec![Value::I64(TAG_TICK), Value::I64(now.as_u64() as i64)])
            }
            JournalRecord::ProcessUplink(vehicle, payload) => Value::List(vec![
                Value::I64(TAG_PROCESS_UPLINK),
                Value::Text(vehicle.vin().to_owned()),
                Value::Bytes(payload.clone()),
            ]),
            JournalRecord::PollDownlink(vehicle) => vehicle_only(TAG_POLL_DOWNLINK, vehicle),
            JournalRecord::BeginIncarnation => Value::List(vec![Value::I64(TAG_BEGIN_INCARNATION)]),
            JournalRecord::CampaignCreate(user, spec) => Value::List(vec![
                Value::I64(TAG_CAMPAIGN_CREATE),
                Value::Text(user.name().to_owned()),
                spec.to_value(),
            ]),
            JournalRecord::CampaignAdvance(id) => campaign_only(TAG_CAMPAIGN_ADVANCE, id),
            JournalRecord::CampaignPause(id) => campaign_only(TAG_CAMPAIGN_PAUSE, id),
            JournalRecord::CampaignResume(id) => campaign_only(TAG_CAMPAIGN_RESUME, id),
            JournalRecord::CampaignAbort(id) => campaign_only(TAG_CAMPAIGN_ABORT, id),
            JournalRecord::CampaignComplete(id) => campaign_only(TAG_CAMPAIGN_COMPLETE, id),
        }
    }

    /// Decodes a record encoded by [`JournalRecord::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub(crate) fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| malformed("not a list"))?;
        let (tag, fields) = parts
            .split_first()
            .ok_or_else(|| malformed("empty record"))?;
        let tag = tag.expect_i64()?;
        let user_vehicle_app = |fields: &[Value]| -> Result<(UserId, VehicleId, AppId)> {
            let [user, vehicle, app] = fields else {
                return Err(malformed("user/vehicle/app arity"));
            };
            Ok((
                UserId::new(text(user, "user")?),
                VehicleId::new(text(vehicle, "vehicle")?),
                AppId::new(text(app, "app")?),
            ))
        };
        let vehicle_only = |fields: &[Value]| -> Result<VehicleId> {
            let [vehicle] = fields else {
                return Err(malformed("vehicle arity"));
            };
            Ok(VehicleId::new(text(vehicle, "vehicle")?))
        };
        let campaign_only = |fields: &[Value]| -> Result<CampaignId> {
            let [campaign] = fields else {
                return Err(malformed("campaign arity"));
            };
            Ok(CampaignId::new(text(campaign, "campaign")?))
        };
        Ok(match tag {
            TAG_SNAPSHOT => {
                let [state] = fields else {
                    return Err(malformed("snapshot arity"));
                };
                JournalRecord::Snapshot(state.clone())
            }
            TAG_CREATE_USER => {
                let [user] = fields else {
                    return Err(malformed("create-user arity"));
                };
                JournalRecord::CreateUser(UserId::new(text(user, "user")?))
            }
            TAG_REGISTER_VEHICLE => {
                let [vehicle, hw, system] = fields else {
                    return Err(malformed("register-vehicle arity"));
                };
                JournalRecord::RegisterVehicle(
                    VehicleId::new(text(vehicle, "vehicle")?),
                    HwConf::from_value(hw)?,
                    SystemSwConf::from_value(system)?,
                )
            }
            TAG_BIND_VEHICLE => {
                let [user, vehicle] = fields else {
                    return Err(malformed("bind-vehicle arity"));
                };
                JournalRecord::BindVehicle(
                    UserId::new(text(user, "user")?),
                    VehicleId::new(text(vehicle, "vehicle")?),
                )
            }
            TAG_UPLOAD_APP => {
                let [app] = fields else {
                    return Err(malformed("upload-app arity"));
                };
                JournalRecord::UploadApp(AppDefinition::from_value(app)?)
            }
            TAG_SET_RETRY_POLICY => {
                let [ack_deadline_ticks, max_attempts] = fields else {
                    return Err(malformed("retry-policy arity"));
                };
                let ack_deadline_ticks = u64::try_from(ack_deadline_ticks.expect_i64()?)
                    .map_err(|_| malformed("ack deadline"))?;
                let max_attempts = u32::try_from(max_attempts.expect_i64()?)
                    .map_err(|_| malformed("max attempts"))?;
                JournalRecord::SetRetryPolicy(RetryPolicy {
                    ack_deadline_ticks,
                    max_attempts,
                })
            }
            TAG_DEPLOY => {
                let (user, vehicle, app) = user_vehicle_app(fields)?;
                JournalRecord::Deploy(user, vehicle, app)
            }
            TAG_UNINSTALL => {
                let (user, vehicle, app) = user_vehicle_app(fields)?;
                JournalRecord::Uninstall(user, vehicle, app)
            }
            TAG_RESTORE => {
                let [vehicle, ecu] = fields else {
                    return Err(malformed("restore arity"));
                };
                let ecu = u16::try_from(ecu.expect_i64()?).map_err(|_| malformed("restore ECU"))?;
                JournalRecord::Restore(VehicleId::new(text(vehicle, "vehicle")?), EcuId::new(ecu))
            }
            TAG_SET_DESIRED => {
                let (user, vehicle, app) = user_vehicle_app(fields)?;
                JournalRecord::SetDesired(user, vehicle, app)
            }
            TAG_CLEAR_DESIRED => {
                let (user, vehicle, app) = user_vehicle_app(fields)?;
                JournalRecord::ClearDesired(user, vehicle, app)
            }
            TAG_RECONCILE => JournalRecord::Reconcile(vehicle_only(fields)?),
            TAG_MARK_OFFLINE => JournalRecord::MarkOffline(vehicle_only(fields)?),
            TAG_MARK_ONLINE => {
                let [vehicle, boot_epoch] = fields else {
                    return Err(malformed("mark-online arity"));
                };
                let boot_epoch =
                    u32::try_from(boot_epoch.expect_i64()?).map_err(|_| malformed("boot epoch"))?;
                JournalRecord::MarkOnline(VehicleId::new(text(vehicle, "vehicle")?), boot_epoch)
            }
            TAG_MARK_UNREACHABLE => JournalRecord::MarkUnreachable(vehicle_only(fields)?),
            TAG_REQUEST_STATE_REPORT => JournalRecord::RequestStateReport(vehicle_only(fields)?),
            TAG_TICK => {
                let [now] = fields else {
                    return Err(malformed("tick arity"));
                };
                let now = u64::try_from(now.expect_i64()?).map_err(|_| malformed("tick"))?;
                JournalRecord::Tick(Tick::new(now))
            }
            TAG_PROCESS_UPLINK => {
                let [vehicle, payload] = fields else {
                    return Err(malformed("process-uplink arity"));
                };
                JournalRecord::ProcessUplink(
                    VehicleId::new(text(vehicle, "vehicle")?),
                    payload
                        .as_bytes()
                        .ok_or_else(|| malformed("uplink payload"))?
                        .to_vec(),
                )
            }
            TAG_POLL_DOWNLINK => JournalRecord::PollDownlink(vehicle_only(fields)?),
            TAG_BEGIN_INCARNATION => {
                if !fields.is_empty() {
                    return Err(malformed("begin-incarnation arity"));
                }
                JournalRecord::BeginIncarnation
            }
            TAG_CAMPAIGN_CREATE => {
                let [user, spec] = fields else {
                    return Err(malformed("campaign-create arity"));
                };
                JournalRecord::CampaignCreate(
                    UserId::new(text(user, "user")?),
                    CampaignSpec::from_value(spec)?,
                )
            }
            TAG_CAMPAIGN_ADVANCE => JournalRecord::CampaignAdvance(campaign_only(fields)?),
            TAG_CAMPAIGN_PAUSE => JournalRecord::CampaignPause(campaign_only(fields)?),
            TAG_CAMPAIGN_RESUME => JournalRecord::CampaignResume(campaign_only(fields)?),
            TAG_CAMPAIGN_ABORT => JournalRecord::CampaignAbort(campaign_only(fields)?),
            TAG_CAMPAIGN_COMPLETE => JournalRecord::CampaignComplete(campaign_only(fields)?),
            other => return Err(malformed(&format!("unknown tag {other}"))),
        })
    }

    /// Decodes a record from one journal frame's payload.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub(crate) fn from_bytes(bytes: &[u8]) -> Result<Self> {
        JournalRecord::from_value(&codec::decode_value(bytes)?)
    }
}

/// A file-backed sink mirroring the journal to disk.
///
/// Every appended frame is written through to the log file immediately (the
/// OS page cache holds it), but `fdatasync` is only issued once per
/// `fsync_interval` appends — batching the expensive flush the way real
/// write-ahead logs do.  A crash can therefore lose at most the last
/// `fsync_interval - 1` *synced* records plus one torn frame at the tail;
/// the frame checksums make the torn tail detectable, and
/// [`crate::TrustedServer::replay_recover`] truncates it instead of failing.
#[derive(Debug)]
struct FileSink {
    file: std::fs::File,
    path: std::path::PathBuf,
    fsync_interval: u32,
    appends_since_sync: u32,
}

impl FileSink {
    /// Creates (or truncates) the log file and seeds it with `contents`,
    /// synced to disk.
    fn create(path: &std::path::Path, fsync_interval: u32, contents: &[u8]) -> Result<FileSink> {
        use std::io::Write;
        let mut file = std::fs::File::create(path)?;
        file.write_all(contents)?;
        file.sync_data()?;
        Ok(FileSink {
            file,
            path: path.to_path_buf(),
            fsync_interval: fsync_interval.max(1),
            appends_since_sync: 0,
        })
    }

    /// Appends one already-framed record, syncing once per interval.
    fn append(&mut self, frame: &[u8]) -> Result<()> {
        use std::io::Write;
        self.file.write_all(frame)?;
        self.appends_since_sync += 1;
        if self.appends_since_sync >= self.fsync_interval {
            self.file.sync_data()?;
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Atomically replaces the log with `contents` (compaction): the new
    /// image is written and synced to a sibling temp file, then renamed over
    /// the log, so a crash mid-compaction leaves either the complete old log
    /// or the complete new one — never a half-written snapshot.
    fn rewrite(&mut self, contents: &[u8]) -> Result<()> {
        use std::io::Write;
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".compact");
        let tmp = std::path::PathBuf::from(tmp);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        self.file = file;
        self.appends_since_sync = 0;
        Ok(())
    }
}

/// The write-ahead journal buffer of one [`crate::TrustedServer`], optionally
/// mirrored to a file sink with batched fsync.
#[derive(Debug)]
pub struct Journal {
    buffer: Vec<u8>,
    compaction_interval: u32,
    records_since_snapshot: u32,
    sink: Option<FileSink>,
}

impl Journal {
    /// Creates an empty journal that compacts after `compaction_interval`
    /// records (clamped to at least 1).
    pub(crate) fn new(compaction_interval: u32) -> Self {
        Journal {
            buffer: Vec::new(),
            compaction_interval: compaction_interval.max(1),
            records_since_snapshot: 0,
            sink: None,
        }
    }

    /// Attaches a file sink at `path` (created or truncated), seeding it
    /// with the journal's current contents and syncing.  Subsequent appends
    /// and compactions are mirrored with `fsync` batched every
    /// `fsync_interval` appends.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Io`] when the file cannot be created or written.
    pub(crate) fn attach_file_sink(
        &mut self,
        path: &std::path::Path,
        fsync_interval: u32,
    ) -> Result<()> {
        self.sink = Some(FileSink::create(path, fsync_interval, &self.buffer)?);
        Ok(())
    }

    /// Appends one record frame.
    pub(crate) fn append(&mut self, record: &JournalRecord) {
        let payload = codec::encode_value(&record.to_value());
        let frame_start = self.buffer.len();
        append_frame(&mut self.buffer, &payload);
        self.records_since_snapshot += 1;
        if let Some(sink) = &mut self.sink {
            // A sink write failure must not desynchronise the in-memory
            // journal (the durability story degrades, the replay story
            // must not): drop the sink and keep running from memory.
            if sink.append(&self.buffer[frame_start..]).is_err() {
                self.sink = None;
            }
        }
    }

    /// `true` once enough records accumulated since the last snapshot.
    pub(crate) fn due_for_compaction(&self) -> bool {
        self.records_since_snapshot >= self.compaction_interval
    }

    /// Replaces the whole buffer with a single snapshot frame of `state`.
    pub(crate) fn compact(&mut self, state: Value) {
        self.buffer.clear();
        let payload = codec::encode_value(&JournalRecord::Snapshot(state).to_value());
        append_frame(&mut self.buffer, &payload);
        self.records_since_snapshot = 0;
        if let Some(sink) = &mut self.sink {
            if sink.rewrite(&self.buffer).is_err() {
                self.sink = None;
            }
        }
    }

    /// The journal's framed byte buffer (what a crash would leave behind;
    /// feed it to `TrustedServer::replay`).
    pub fn bytes(&self) -> &[u8] {
        &self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let records = vec![
            JournalRecord::Snapshot(Value::List(vec![Value::I64(1)])),
            JournalRecord::CreateUser(UserId::new("alice")),
            JournalRecord::RegisterVehicle(
                VehicleId::new("vin-1"),
                HwConf::new().with_ecu(EcuId::new(1), 512),
                SystemSwConf::new("model-car"),
            ),
            JournalRecord::BindVehicle(UserId::new("alice"), VehicleId::new("vin-1")),
            JournalRecord::UploadApp(AppDefinition::new(AppId::new("app"))),
            JournalRecord::SetRetryPolicy(RetryPolicy {
                ack_deadline_ticks: 10,
                max_attempts: 3,
            }),
            JournalRecord::Deploy(
                UserId::new("alice"),
                VehicleId::new("vin-1"),
                AppId::new("app"),
            ),
            JournalRecord::Uninstall(
                UserId::new("alice"),
                VehicleId::new("vin-1"),
                AppId::new("app"),
            ),
            JournalRecord::Restore(VehicleId::new("vin-1"), EcuId::new(2)),
            JournalRecord::SetDesired(
                UserId::new("alice"),
                VehicleId::new("vin-1"),
                AppId::new("app"),
            ),
            JournalRecord::ClearDesired(
                UserId::new("alice"),
                VehicleId::new("vin-1"),
                AppId::new("app"),
            ),
            JournalRecord::Reconcile(VehicleId::new("vin-1")),
            JournalRecord::MarkOffline(VehicleId::new("vin-1")),
            JournalRecord::MarkOnline(VehicleId::new("vin-1"), 3),
            JournalRecord::MarkUnreachable(VehicleId::new("vin-1")),
            JournalRecord::RequestStateReport(VehicleId::new("vin-1")),
            JournalRecord::Tick(Tick::new(77)),
            JournalRecord::ProcessUplink(VehicleId::new("vin-1"), vec![1, 2, 3]),
            JournalRecord::PollDownlink(VehicleId::new("vin-1")),
            JournalRecord::BeginIncarnation,
            JournalRecord::CampaignCreate(
                UserId::new("alice"),
                CampaignSpec {
                    id: CampaignId::new("rollout-1"),
                    app: AppId::new("app-v2"),
                    replaces: Some(AppId::new("app")),
                    selector: crate::campaign::VehicleSelector::Model("model-car".into()),
                    plan: crate::campaign::WavePlan {
                        canary: 2,
                        ramp_percent: vec![25, 100],
                    },
                    gate: crate::campaign::HealthGate {
                        min_soak_ticks: 30,
                        pause_failed: 0,
                        abort_failed: 1,
                    },
                },
            ),
            JournalRecord::CampaignAdvance(CampaignId::new("rollout-1")),
            JournalRecord::CampaignPause(CampaignId::new("rollout-1")),
            JournalRecord::CampaignResume(CampaignId::new("rollout-1")),
            JournalRecord::CampaignAbort(CampaignId::new("rollout-1")),
            JournalRecord::CampaignComplete(CampaignId::new("rollout-1")),
        ];
        for record in records {
            let decoded = JournalRecord::from_value(&record.to_value()).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn malformed_records_are_typed_errors() {
        assert!(JournalRecord::from_value(&Value::I64(0)).is_err());
        assert!(JournalRecord::from_value(&Value::List(vec![])).is_err());
        assert!(JournalRecord::from_value(&Value::List(vec![Value::I64(999)])).is_err());
        assert!(JournalRecord::from_bytes(&[0xff, 0x01]).is_err());
    }

    #[test]
    fn compaction_resets_the_buffer_to_one_snapshot_frame() {
        let mut journal = Journal::new(2);
        journal.append(&JournalRecord::BeginIncarnation);
        assert!(!journal.due_for_compaction());
        journal.append(&JournalRecord::Reconcile(VehicleId::new("vin-1")));
        assert!(journal.due_for_compaction());
        let before = journal.bytes().len();
        journal.compact(Value::List(vec![]));
        assert!(journal.bytes().len() < before + 32);
        assert!(!journal.due_for_compaction());
    }
}
