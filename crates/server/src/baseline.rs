//! The conventional deployment baseline: re-flash the ECU.
//!
//! Classical AUTOSAR "does not offer any possibility to make dynamic
//! additions, but any changes require the software to be rebuilt and the ECU
//! to be reprogrammed" (paper §2).  This module models that path so the
//! benchmarks can compare dynamic plug-in deployment against it: a re-flash
//! transfers the *whole* application image of every affected ECU, requires
//! the vehicle to be stationary at a service point and reboots each ECU.

use serde::{Deserialize, Serialize};

/// Parameters of the re-flash deployment model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReflashBaseline {
    /// Size of a full ECU application image in KiB.
    pub image_size_kb: u64,
    /// Flashing throughput in KiB per tick.
    pub flash_rate_kb_per_tick: u64,
    /// Ticks spent rebooting an ECU after flashing.
    pub reboot_ticks: u64,
    /// Ticks spent driving to and waiting at a service point (zero when
    /// over-the-air re-flashing is assumed).
    pub service_visit_ticks: u64,
}

impl Default for ReflashBaseline {
    fn default() -> Self {
        ReflashBaseline {
            image_size_kb: 4 * 1024,
            flash_rate_kb_per_tick: 16,
            reboot_ticks: 200,
            service_visit_ticks: 0,
        }
    }
}

impl ReflashBaseline {
    /// Ticks needed to re-flash the given number of ECUs (sequentially, as a
    /// workshop tool would).
    pub fn deployment_ticks(&self, ecus: usize) -> u64 {
        let per_ecu = self.image_size_kb / self.flash_rate_kb_per_tick.max(1) + self.reboot_ticks;
        self.service_visit_ticks + per_ecu * ecus as u64
    }

    /// Bytes transferred to re-flash the given number of ECUs.
    pub fn bytes_transferred(&self, ecus: usize) -> u64 {
        self.image_size_kb * 1024 * ecus as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_time_scales_with_ecus() {
        let baseline = ReflashBaseline::default();
        assert!(baseline.deployment_ticks(2) > baseline.deployment_ticks(1));
        assert_eq!(
            baseline.deployment_ticks(2),
            2 * baseline.deployment_ticks(1) - baseline.service_visit_ticks
        );
    }

    #[test]
    fn service_visit_is_counted_once() {
        let baseline = ReflashBaseline {
            service_visit_ticks: 1000,
            ..ReflashBaseline::default()
        };
        let single = baseline.deployment_ticks(1);
        let double = baseline.deployment_ticks(2);
        assert_eq!(double - single, single - 1000);
    }

    #[test]
    fn transferred_bytes_cover_full_images() {
        let baseline = ReflashBaseline::default();
        assert_eq!(baseline.bytes_transferred(3), 3 * 4 * 1024 * 1024);
    }
}
