//! Virtual ports: the static API a plug-in SW-C exposes to its plug-ins.
//!
//! The static part of the PIRTE "consists of a mapping between the SW-C ports
//! and the so-called virtual ports, which build up the actual static API
//! available to the plug-ins" (§3.1.2).  Every virtual port references exactly
//! one SW-C port, carries the port type (I, II or III of §3.1.3) and an
//! optional value transformation, since "the plug-in and SW-C ports can have
//! completely different formats, as long as the PIRTE is able to translate
//! between these formats in its virtual ports".

use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::ids::VirtualPortId;
use dynar_foundation::value::Value;

/// The three special-purpose SW-C port types of the dynamic component model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Connects a plug-in SW-C with the ECM SW-C (management and external
    /// traffic).
    TypeI,
    /// Connects plug-in SW-Cs with each other (multiplexed plug-in data).
    TypeII,
    /// Connects a plug-in SW-C with the built-in software (ordinary AUTOSAR
    /// signals).
    TypeIII,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::TypeI => f.write_str("type I"),
            PortKind::TypeII => f.write_str("type II"),
            PortKind::TypeIII => f.write_str("type III"),
        }
    }
}

/// Which way data flows through a virtual port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDataDirection {
    /// Data arrives on the SW-C port and is delivered into plug-in ports.
    ToPlugins,
    /// Plug-ins write data that leaves through the SW-C port.
    ToSystem,
}

/// A value transformation applied by a virtual port when translating between
/// plug-in and SW-C formats.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PortTransform {
    /// Pass values through unchanged.
    #[default]
    Identity,
    /// Multiply numeric values by a factor (e.g. km/h to m/s).
    Scale(f64),
    /// Clamp numeric values into a range (a simple fault-protection mechanism
    /// for critical signals, §3.1.1).
    Clamp {
        /// Smallest admissible value.
        min: f64,
        /// Largest admissible value.
        max: f64,
    },
}

impl PortTransform {
    /// Applies the transformation.  Non-numeric values pass through unchanged
    /// for `Scale` and `Clamp`.
    pub fn apply(&self, value: Value) -> Value {
        match self {
            PortTransform::Identity => value,
            PortTransform::Scale(factor) => match value.as_f64() {
                Some(v) => Value::F64(v * factor),
                None => value,
            },
            PortTransform::Clamp { min, max } => match value.as_f64() {
                Some(v) => Value::F64(v.clamp(*min, *max)),
                None => value,
            },
        }
    }
}

/// The static declaration of one virtual port.
///
/// # Example
/// ```
/// use dynar_core::virtual_port::{PortDataDirection, PortKind, PortTransform, VirtualPortSpec};
/// use dynar_foundation::ids::VirtualPortId;
///
/// let speed_req = VirtualPortSpec::new(
///     VirtualPortId::new(5),
///     "SpeedReq",
///     PortKind::TypeIII,
///     PortDataDirection::ToSystem,
///     "speed_req",
/// )
/// .with_transform(PortTransform::Clamp { min: 0.0, max: 30.0 });
/// assert_eq!(speed_req.name(), "SpeedReq");
/// assert_eq!(speed_req.swc_port(), "speed_req");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualPortSpec {
    id: VirtualPortId,
    name: String,
    kind: PortKind,
    direction: PortDataDirection,
    swc_port: String,
    transform: PortTransform,
}

impl VirtualPortSpec {
    /// Creates a virtual-port declaration.
    pub fn new(
        id: VirtualPortId,
        name: impl Into<String>,
        kind: PortKind,
        direction: PortDataDirection,
        swc_port: impl Into<String>,
    ) -> Self {
        VirtualPortSpec {
            id,
            name: name.into(),
            kind,
            direction,
            swc_port: swc_port.into(),
            transform: PortTransform::Identity,
        }
    }

    /// Attaches a value transformation.
    #[must_use]
    pub fn with_transform(mut self, transform: PortTransform) -> Self {
        self.transform = transform;
        self
    }

    /// The virtual-port identifier (the `V0`, `V1`, ... of Figure 3).
    pub fn id(&self) -> VirtualPortId {
        self.id
    }

    /// The human-readable name, e.g. `WheelsReq`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port type (I, II or III).
    pub fn kind(&self) -> PortKind {
        self.kind
    }

    /// The data-flow direction.
    pub fn direction(&self) -> PortDataDirection {
        self.direction
    }

    /// The SW-C port this virtual port maps onto.
    pub fn swc_port(&self) -> &str {
        &self.swc_port
    }

    /// The value transformation applied when crossing this virtual port.
    pub fn transform(&self) -> PortTransform {
        self.transform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_apply_to_numbers_only() {
        assert_eq!(
            PortTransform::Scale(2.0).apply(Value::I64(21)),
            Value::F64(42.0)
        );
        assert_eq!(
            PortTransform::Scale(2.0).apply(Value::Text("x".into())),
            Value::Text("x".into())
        );
        assert_eq!(
            PortTransform::Clamp {
                min: 0.0,
                max: 10.0
            }
            .apply(Value::F64(99.0)),
            Value::F64(10.0)
        );
        assert_eq!(
            PortTransform::Clamp {
                min: 0.0,
                max: 10.0
            }
            .apply(Value::F64(-5.0)),
            Value::F64(0.0)
        );
        assert_eq!(PortTransform::Identity.apply(Value::Void), Value::Void);
    }

    #[test]
    fn spec_accessors() {
        let spec = VirtualPortSpec::new(
            VirtualPortId::new(3),
            "WheelsReq",
            PortKind::TypeIII,
            PortDataDirection::ToSystem,
            "wheels_req",
        );
        assert_eq!(spec.id(), VirtualPortId::new(3));
        assert_eq!(spec.kind(), PortKind::TypeIII);
        assert_eq!(spec.direction(), PortDataDirection::ToSystem);
        assert_eq!(spec.transform(), PortTransform::Identity);
    }

    #[test]
    fn port_kind_display() {
        assert_eq!(PortKind::TypeI.to_string(), "type I");
        assert_eq!(PortKind::TypeII.to_string(), "type II");
        assert_eq!(PortKind::TypeIII.to_string(), "type III");
    }
}
