//! Installed plug-ins and their ports.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::Result;
use dynar_foundation::ids::{AppId, PluginId, PluginPortId};
use dynar_foundation::value::Value;
use dynar_vm::budget::Budget;
use dynar_vm::engine::{Engine, ExecMode};
use dynar_vm::program::Program;

use crate::context::{ExternalConnectionContext, InstallationContext, LinkTarget};
use crate::lifecycle::{LifecycleRequest, PluginState};

/// How many inbound values one plug-in port buffers before dropping the
/// oldest (the communication-resource part of the best-effort budget).
pub const PLUGIN_PORT_QUEUE: usize = 32;

/// Whether a plug-in port is written or read by the plug-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PluginPortDirection {
    /// The plug-in writes on this port.
    Provided,
    /// The plug-in reads from this port.
    Required,
}

impl fmt::Display for PluginPortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PluginPortDirection::Provided => f.write_str("provided"),
            PluginPortDirection::Required => f.write_str("required"),
        }
    }
}

/// The runtime state of one plug-in port.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PluginPort {
    /// The SW-C-scope unique id assigned by the server's PIC.
    pub id: PluginPortId,
    /// The developer-chosen port name.
    pub name: String,
    /// The direction from the plug-in's perspective.
    pub direction: PluginPortDirection,
    /// Where the port is linked, per the PLC.
    pub link: LinkTarget,
    queue: VecDeque<Value>,
    last: Value,
    overflows: u64,
}

impl PluginPort {
    fn new(
        id: PluginPortId,
        name: String,
        direction: PluginPortDirection,
        link: LinkTarget,
    ) -> Self {
        PluginPort {
            id,
            name,
            direction,
            link,
            queue: VecDeque::new(),
            last: Value::Void,
            overflows: 0,
        }
    }

    /// Queues an inbound value for the plug-in (dropping the oldest value on
    /// overflow).
    pub fn push(&mut self, value: Value) {
        if self.queue.len() == PLUGIN_PORT_QUEUE {
            self.queue.pop_front();
            self.overflows += 1;
        }
        self.last = value.clone();
        self.queue.push_back(value);
    }

    /// Records a value written by the plug-in (so diagnostics can observe it).
    pub fn record_output(&mut self, value: Value) {
        self.last = value;
    }

    /// The most recent value seen on the port, in either direction.
    pub fn last(&self) -> &Value {
        &self.last
    }

    /// Consumes the next queued inbound value.
    pub fn take(&mut self) -> Option<Value> {
        self.queue.pop_front()
    }

    /// Number of queued inbound values.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of inbound values dropped because the queue was full.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

/// One installed plug-in: its virtual machine, ports and life-cycle state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plugin {
    id: PluginId,
    app: AppId,
    engine: Engine,
    state: PluginState,
    ports: Vec<PluginPort>,
    port_index: HashMap<PluginPortId, usize>,
    ecc: Option<ExternalConnectionContext>,
}

impl Plugin {
    /// Instantiates a plug-in from its binary and installation context.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] if the binary cannot be
    /// parsed and [`DynarError::InvalidConfiguration`] if the context is
    /// internally inconsistent.
    pub fn instantiate(
        id: PluginId,
        app: AppId,
        binary: &[u8],
        context: &InstallationContext,
        budget: Budget,
        mode: ExecMode,
    ) -> Result<Self> {
        context.validate()?;
        let program = Program::from_bytes(binary)?;
        let mut ports = Vec::with_capacity(context.pic.ports().len());
        let mut port_index = HashMap::new();
        for init in context.pic.ports() {
            let link = context.plc.target_of(init.id);
            port_index.insert(init.id, ports.len());
            ports.push(PluginPort::new(
                init.id,
                init.name.clone(),
                init.direction,
                link,
            ));
        }
        Ok(Plugin {
            id,
            app,
            engine: Engine::new(program, budget, mode)?,
            state: PluginState::Installed,
            ports,
            port_index,
            ecc: context.ecc.clone(),
        })
    }

    /// The plug-in identifier.
    pub fn id(&self) -> &PluginId {
        &self.id
    }

    /// The application this plug-in belongs to.
    pub fn app(&self) -> &AppId {
        &self.app
    }

    /// The current life-cycle state.
    pub fn state(&self) -> PluginState {
        self.state
    }

    /// The External Connection Context shipped with the plug-in, if any.
    pub fn ecc(&self) -> Option<&ExternalConnectionContext> {
        self.ecc.as_ref()
    }

    /// The plug-in's ports in slot order (the order of the PIC).
    pub fn ports(&self) -> &[PluginPort] {
        &self.ports
    }

    /// Looks up a port by its SW-C-scope unique id.
    pub fn port(&self, id: PluginPortId) -> Option<&PluginPort> {
        self.port_index.get(&id).map(|&i| &self.ports[i])
    }

    /// Mutable access to a port by id.
    pub fn port_mut(&mut self, id: PluginPortId) -> Option<&mut PluginPort> {
        self.port_index
            .get(&id)
            .copied()
            .map(move |i| &mut self.ports[i])
    }

    /// Mutable access to a port by its dense slot index (the order of
    /// [`Plugin::ports`]), used by the PIRTE's compiled route tables.
    pub fn port_at_mut(&mut self, index: usize) -> Option<&mut PluginPort> {
        self.ports.get_mut(index)
    }

    /// The execution engine hosting the plug-in code (interpreter,
    /// compiled fast plane, or lock-step shadow of both).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Applies a life-cycle transition, resetting the VM on restart.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::LifecycleViolation`] for illegal transitions.
    pub fn request(&mut self, request: LifecycleRequest) -> Result<PluginState> {
        let next = self.state.transition(self.id.name(), request)?;
        if request == LifecycleRequest::Restart {
            self.engine.reset();
        }
        self.state = next;
        Ok(next)
    }

    /// Splits the plug-in into the parts needed to run one VM slot: the
    /// machine itself and the port table the host adapter works on.
    pub(crate) fn split_for_run(&mut self) -> (&PluginId, &mut Engine, &mut [PluginPort]) {
        (&self.id, &mut self.engine, &mut self.ports)
    }

    /// Records that the VM faulted or finished, updating the life-cycle
    /// state accordingly.
    pub(crate) fn record_vm_outcome(&mut self, outcome: VmOutcome) {
        let request = match outcome {
            VmOutcome::Faulted => LifecycleRequest::Fail,
            VmOutcome::Finished => LifecycleRequest::Finish,
        };
        if let Ok(next) = self.state.transition(self.id.name(), request) {
            self.state = next;
        }
    }
}

/// Terminal outcomes of a VM slot that affect the plug-in life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VmOutcome {
    /// The plug-in program faulted.
    Faulted,
    /// The plug-in program halted normally.
    Finished,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{PortInitContext, PortLinkContext};
    use dynar_vm::assembler::assemble;

    fn simple_context() -> InstallationContext {
        InstallationContext::new(
            PortInitContext::new()
                .with_port("in", PluginPortId::new(0), PluginPortDirection::Required)
                .with_port("out", PluginPortId::new(1), PluginPortDirection::Provided),
            PortLinkContext::new(),
        )
    }

    fn simple_binary() -> Vec<u8> {
        assemble("p", "take_port 0\nwrite_port 1\nhalt")
            .unwrap()
            .to_bytes()
    }

    #[test]
    fn instantiate_builds_ports_in_slot_order() {
        let plugin = Plugin::instantiate(
            PluginId::new("p"),
            AppId::new("a"),
            &simple_binary(),
            &simple_context(),
            Budget::default(),
            ExecMode::default(),
        )
        .unwrap();
        assert_eq!(plugin.ports().len(), 2);
        assert_eq!(plugin.ports()[0].name, "in");
        assert_eq!(plugin.ports()[1].id, PluginPortId::new(1));
        assert_eq!(plugin.state(), PluginState::Installed);
        assert!(plugin.ecc().is_none());
        assert_eq!(plugin.app().name(), "a");
    }

    #[test]
    fn instantiate_rejects_garbage_binaries_and_bad_contexts() {
        assert!(Plugin::instantiate(
            PluginId::new("p"),
            AppId::new("a"),
            &[1, 2, 3],
            &simple_context(),
            Budget::default(),
            ExecMode::default(),
        )
        .is_err());

        let bad_context = InstallationContext::new(
            PortInitContext::new()
                .with_port("dup", PluginPortId::new(0), PluginPortDirection::Required)
                .with_port("dup", PluginPortId::new(1), PluginPortDirection::Required),
            PortLinkContext::new(),
        );
        assert!(Plugin::instantiate(
            PluginId::new("p"),
            AppId::new("a"),
            &simple_binary(),
            &bad_context,
            Budget::default(),
            ExecMode::default(),
        )
        .is_err());
    }

    #[test]
    fn port_queue_bounds_and_overflow_counting() {
        let mut plugin = Plugin::instantiate(
            PluginId::new("p"),
            AppId::new("a"),
            &simple_binary(),
            &simple_context(),
            Budget::default(),
            ExecMode::default(),
        )
        .unwrap();
        let port = plugin.port_mut(PluginPortId::new(0)).unwrap();
        for i in 0..(PLUGIN_PORT_QUEUE + 5) {
            port.push(Value::I64(i as i64));
        }
        assert_eq!(port.pending(), PLUGIN_PORT_QUEUE);
        assert_eq!(port.overflows(), 5);
        assert_eq!(port.take(), Some(Value::I64(5)));
        assert_eq!(port.last(), &Value::I64((PLUGIN_PORT_QUEUE + 4) as i64));
    }

    #[test]
    fn lifecycle_requests_flow_through() {
        let mut plugin = Plugin::instantiate(
            PluginId::new("p"),
            AppId::new("a"),
            &simple_binary(),
            &simple_context(),
            Budget::default(),
            ExecMode::default(),
        )
        .unwrap();
        plugin.request(LifecycleRequest::Start).unwrap();
        assert_eq!(plugin.state(), PluginState::Running);
        plugin.request(LifecycleRequest::Stop).unwrap();
        assert!(plugin.request(LifecycleRequest::Finish).is_err());
        plugin.request(LifecycleRequest::Restart).unwrap();
        assert_eq!(plugin.state(), PluginState::Running);
    }

    #[test]
    fn unknown_port_lookup_returns_none() {
        let plugin = Plugin::instantiate(
            PluginId::new("p"),
            AppId::new("a"),
            &simple_binary(),
            &simple_context(),
            Budget::default(),
            ExecMode::default(),
        )
        .unwrap();
        assert!(plugin.port(PluginPortId::new(42)).is_none());
    }
}
