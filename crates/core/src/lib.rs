//! The dynamic component model for AUTOSAR — the paper's primary contribution.
//!
//! Classical AUTOSAR configures every software component, port and connection
//! at design time; nothing can be added to a running vehicle without
//! re-flashing the ECU.  The dynamic component model of the paper (§3) keeps
//! that static world untouched and adds, *on top of it*:
//!
//! * **plug-in SW-Cs** ([`swc::PluginSwc`]) — ordinary AUTOSAR software
//!   components that embed a virtual machine and a Plug-in Runtime
//!   Environment, sandboxing downloaded plug-ins behind standard SW-C ports;
//! * the **PIRTE** ([`pirte::Pirte`]) — a middleware with a static part (the
//!   mapping between SW-C ports and *virtual ports*, the API exposed to
//!   plug-ins) and a dynamic part (installation, port configuration and
//!   scheduling of plug-ins);
//! * **special-purpose port types** ([`virtual_port::PortKind`]) — type I
//!   ports towards the external communication manager, type II ports between
//!   plug-in SW-Cs, and type III ports towards the built-in software;
//! * the **context model** ([`context`]) — the Port Initialization Context,
//!   Port Linking Context and External Connection Context shipped with every
//!   installation package, which tell the PIRTE how to wire a plug-in into a
//!   particular vehicle;
//! * **life-cycle management** ([`lifecycle`]) and the management
//!   [`message`]s exchanged with the external communication manager and the
//!   trusted server.
//!
//! # Example
//!
//! Install a tiny plug-in into a stand-alone PIRTE and let it forward a value
//! from one of its ports to a virtual port of the hosting SW-C:
//!
//! ```
//! use dynar_core::context::{InstallationContext, PortInitContext, PortLinkContext, LinkTarget};
//! use dynar_core::message::InstallationPackage;
//! use dynar_core::pirte::Pirte;
//! use dynar_core::plugin::PluginPortDirection;
//! use dynar_core::virtual_port::{PortKind, VirtualPortSpec, PortDataDirection};
//! use dynar_core::swc::PluginSwcConfig;
//! use dynar_foundation::ids::{AppId, EcuId, PluginId, PluginPortId, VirtualPortId};
//! use dynar_foundation::value::Value;
//! use dynar_vm::assembler::assemble;
//!
//! # fn main() -> Result<(), dynar_foundation::error::DynarError> {
//! // The OEM-provided static API: one type III virtual port bound to SW-C port "speed_req".
//! let config = PluginSwcConfig::new("plugin-swc")
//!     .with_virtual_port(VirtualPortSpec::new(
//!         VirtualPortId::new(0),
//!         "SpeedReq",
//!         PortKind::TypeIII,
//!         PortDataDirection::ToSystem,
//!         "speed_req",
//!     ));
//! let mut pirte = Pirte::new(EcuId::new(1), config);
//!
//! // A plug-in that writes 42 to its port 0 and halts.
//! let binary = assemble("demo", "push_int 42\nwrite_port 0\nhalt")?.to_bytes();
//! let package = InstallationPackage::new(
//!     PluginId::new("demo"),
//!     AppId::new("demo-app"),
//!     binary,
//!     InstallationContext::new(
//!         PortInitContext::new().with_port("out", PluginPortId::new(0), PluginPortDirection::Provided),
//!         PortLinkContext::new().with_link(PluginPortId::new(0), LinkTarget::VirtualPort(VirtualPortId::new(0))),
//!     ),
//! );
//! pirte.install(package)?;
//! pirte.run_plugins();
//!
//! // The value surfaced on the SW-C port bound to the virtual port.
//! let outbox = pirte.drain_outbox();
//! assert_eq!(outbox, vec![("speed_req".to_string(), Value::I64(42))]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod lifecycle;
pub mod message;
pub mod pirte;
pub mod plugin;
pub mod swc;
pub mod virtual_port;

pub use context::{
    ExternalConnectionContext, InstallationContext, LinkTarget, PortInitContext, PortLinkContext,
};
pub use lifecycle::PluginState;
pub use message::{Ack, AckStatus, InstallationPackage, ManagementMessage};
pub use pirte::{Pirte, PirteStats};
pub use plugin::{Plugin, PluginPortDirection};
pub use swc::{PluginSwc, PluginSwcConfig, SharedPirte};
pub use virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
