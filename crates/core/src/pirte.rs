//! The Plug-in Runtime Environment (PIRTE).
//!
//! The PIRTE is the middleware inside every plug-in SW-C (§3.1.2).  Its
//! *static part* maps SW-C ports to virtual ports — the API the OEM exposes to
//! plug-ins.  Its *dynamic part* installs and manages plug-ins, configures
//! their port connections from the shipped PIC/PLC/ECC contexts, schedules
//! their virtual machines under best-effort budgets and translates every
//! signal that crosses the plug-in boundary.
//!
//! Signal translation runs on compiled route tables (interned virtual-port
//! and plug-in-port slots indexing flat `Vec`s): plug-in installation and
//! uninstallation are the *only* operations that invalidate and rebuild them;
//! per-signal dispatch never hashes over the plug-in list.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{EcuId, PluginId, PluginPortId, VirtualPortId};
use dynar_foundation::intern::Interner;
use dynar_foundation::log::{EventLog, Severity};
use dynar_foundation::time::Tick;
use dynar_foundation::value::Value;
use dynar_vm::interpreter::{PortHost, VmStatus};

use crate::context::LinkTarget;
use crate::lifecycle::{LifecycleRequest, PluginState};
use crate::message::{Ack, AckStatus, InstallationPackage, ManagementMessage};
use crate::plugin::{Plugin, PluginPort, PluginPortDirection, VmOutcome};
use crate::swc::PluginSwcConfig;
use crate::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};

/// Upper bound on the width of the direct-indexed plug-in-port owner table:
/// ids below this index hit a flat `Vec` on the per-signal dispatch path,
/// ids at or above it fall back to the interner lookup.  Port ids are
/// assigned densely per ECU by the trusted server, so in practice every id
/// sits far below this bound — it exists so a hostile or corrupted
/// installation package carrying a huge id cannot make the table allocation
/// explode.
const DIRECT_PORT_OWNER_LIMIT: usize = 4096;

/// Counters describing one PIRTE instance's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PirteStats {
    /// Successful plug-in installations.
    pub installs: u64,
    /// Successful plug-in uninstallations.
    pub uninstalls: u64,
    /// Installs over the management path that *replaced* an already-present
    /// plug-in of the same id (server-driven resync after a lost
    /// acknowledgement or a reboot; never a deduplicated retransmission).
    pub reinstalls: u64,
    /// Installation or management operations that were rejected.
    pub rejected_operations: u64,
    /// Values delivered into plug-in ports.
    pub signals_in: u64,
    /// Values written by plug-ins through virtual ports.
    pub signals_out: u64,
    /// Execution slots granted to plug-ins.
    pub slots_granted: u64,
    /// Total VM instructions executed across all plug-ins.
    pub instructions_executed: u64,
    /// Plug-ins that faulted.
    pub plugin_faults: u64,
}

/// The Plug-in Runtime Environment of one plug-in SW-C.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Pirte {
    ecu: EcuId,
    config: PluginSwcConfig,
    virtual_ports: HashMap<VirtualPortId, VirtualPortSpec>,
    /// Virtual port -> shared SW-C port name, so every outbox entry is an
    /// `Arc<str>` clone instead of a fresh `String` per routed signal.
    swc_port_shared: HashMap<VirtualPortId, Arc<str>>,
    /// The type I outbound port as a shared name (management ack path).
    type_i_out_shared: Option<Arc<str>>,
    swc_port_to_virtual: HashMap<String, VirtualPortId>,
    plugins: Vec<Plugin>,
    plugin_index: HashMap<PluginId, usize>,
    used_port_ids: HashSet<PluginPortId>,
    /// Virtual-port id -> dense slot (static; interned at construction).
    virtual_slots: Interner<VirtualPortId>,
    /// virtual slot -> `(plugin index, port index)` of every required plug-in
    /// port linked to that virtual port (compiled on (un)install).
    virtual_fanout: Vec<Vec<(usize, usize)>>,
    /// Plug-in port id -> dense slot (freed on uninstall, reused on install).
    plugin_port_slots: Interner<PluginPortId>,
    /// plug-in-port slot -> `(plugin index, port index)` of the owning port
    /// (compiled on (un)install).
    port_owner: Vec<Option<(usize, usize)>>,
    /// Plug-in port id (raw index) -> owning `(plugin index, port index)`,
    /// compiled on (un)install.  Port ids are SW-C-scope dense (the server
    /// assigns them sequentially), so the per-signal dispatch indexes this
    /// table directly instead of hashing the id through the interner; its
    /// width is capped at [`DIRECT_PORT_OWNER_LIMIT`] (larger ids use the
    /// interner fallback).
    port_owner_by_id: Vec<Option<(usize, usize)>>,
    /// Values to be written on SW-C ports by the hosting component behaviour
    /// (`Arc<str>` port names shared with the static configuration).
    outbox: Vec<(Arc<str>, Value)>,
    /// Values written by plug-ins on direct-linked (PLC `{Px-}`) ports,
    /// consumed by the embedding SW-C (the ECM uses this for outbound
    /// external data).
    direct_outputs: Vec<(PluginId, PluginPortId, Value)>,
    log: EventLog,
    stats: PirteStats,
    now: Tick,
}

impl Pirte {
    /// Creates a PIRTE from the OEM-provided static configuration.
    pub fn new(ecu: EcuId, config: PluginSwcConfig) -> Self {
        let mut virtual_ports = HashMap::new();
        let mut swc_port_shared = HashMap::new();
        let mut swc_port_to_virtual = HashMap::new();
        let mut virtual_slots = Interner::new();
        for spec in config.virtual_ports() {
            swc_port_to_virtual.insert(spec.swc_port().to_owned(), spec.id());
            swc_port_shared.insert(spec.id(), Arc::<str>::from(spec.swc_port()));
            virtual_ports.insert(spec.id(), spec.clone());
            virtual_slots.intern(spec.id());
        }
        let type_i_out_shared = config.type_i_out().map(Arc::<str>::from);
        let virtual_fanout = vec![Vec::new(); virtual_slots.capacity()];
        Pirte {
            ecu,
            config,
            virtual_ports,
            swc_port_shared,
            type_i_out_shared,
            swc_port_to_virtual,
            plugins: Vec::new(),
            plugin_index: HashMap::new(),
            used_port_ids: HashSet::new(),
            virtual_slots,
            virtual_fanout,
            plugin_port_slots: Interner::new(),
            port_owner: Vec::new(),
            port_owner_by_id: Vec::new(),
            outbox: Vec::new(),
            direct_outputs: Vec::new(),
            log: EventLog::new(),
            stats: PirteStats::default(),
            now: Tick::ZERO,
        }
    }

    /// The ECU this PIRTE runs on.
    pub fn ecu(&self) -> EcuId {
        self.ecu
    }

    /// The static configuration of the hosting plug-in SW-C.
    pub fn config(&self) -> &PluginSwcConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> PirteStats {
        self.stats
    }

    /// The PIRTE's event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Informs the PIRTE of the current simulated time (used only for log
    /// timestamps).
    pub fn set_now(&mut self, now: Tick) {
        self.now = now;
    }

    /// The virtual-port declaration with the given id.
    pub fn virtual_port(&self, id: VirtualPortId) -> Option<&VirtualPortSpec> {
        self.virtual_ports.get(&id)
    }

    /// Identifiers and states of every installed plug-in.
    pub fn plugin_states(&self) -> Vec<(PluginId, PluginState)> {
        self.plugins
            .iter()
            .map(|p| (p.id().clone(), p.state()))
            .collect()
    }

    /// Read access to an installed plug-in.
    pub fn plugin(&self, id: &PluginId) -> Option<&Plugin> {
        self.plugin_index.get(id).map(|&i| &self.plugins[i])
    }

    /// Number of installed plug-ins.
    pub fn plugin_count(&self) -> usize {
        self.plugins.len()
    }

    // ------------------------------------------------------------------
    // Dynamic part: installation and life-cycle management
    // ------------------------------------------------------------------

    /// Installs a plug-in from an installation package and starts it.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the plug-in or one of its port ids
    /// is already present, [`DynarError::NotFound`] if the PLC references a
    /// virtual port the static configuration does not declare, and propagates
    /// binary/context validation errors.
    pub fn install(&mut self, package: InstallationPackage) -> Result<()> {
        if self.plugin_index.contains_key(&package.plugin) {
            self.stats.rejected_operations += 1;
            return Err(DynarError::duplicate("plug-in", &package.plugin));
        }
        let plugin = self.validate_and_instantiate(&package, None)?;
        self.commit_install(plugin, &package);
        self.log.record(
            self.now,
            Severity::Info,
            "pirte",
            format!("installed and started plug-in {}", package.plugin.name()),
        );
        Ok(())
    }

    /// Validates a package against the current PIRTE state — port-id
    /// collisions (ids in `reusable` excluded: a replacement may take over
    /// the outgoing instance's own ids), virtual-port references, binary and
    /// context — and returns the instantiated, started plug-in.  Nothing is
    /// mutated besides the rejection counter, so a failure leaves the PIRTE
    /// untouched (shared by [`Pirte::install`] and [`Pirte::reinstall`]).
    fn validate_and_instantiate(
        &mut self,
        package: &InstallationPackage,
        reusable: Option<&HashSet<PluginPortId>>,
    ) -> Result<Plugin> {
        for init in package.context.pic.ports() {
            let reused = reusable.is_some_and(|ids| ids.contains(&init.id));
            if self.used_port_ids.contains(&init.id) && !reused {
                self.stats.rejected_operations += 1;
                return Err(DynarError::duplicate("plug-in port id", init.id));
            }
        }
        for link in package.context.plc.links() {
            let referenced = match link.target {
                LinkTarget::VirtualPort(v) => Some(v),
                LinkTarget::RemotePluginPort { via, .. } => Some(via),
                LinkTarget::Direct => None,
            };
            if let Some(v) = referenced {
                if !self.virtual_ports.contains_key(&v) {
                    self.stats.rejected_operations += 1;
                    return Err(DynarError::not_found("virtual port", v));
                }
            }
        }
        let mut plugin = Plugin::instantiate(
            package.plugin.clone(),
            package.app.clone(),
            &package.binary,
            &package.context,
            self.config.plugin_budget(),
            self.config.exec_mode(),
        )?;
        plugin.request(LifecycleRequest::Start)?;
        Ok(plugin)
    }

    /// Commits a validated, started plug-in: reserves its port ids, indexes
    /// it and recompiles the routing tables (shared by [`Pirte::install`]
    /// and [`Pirte::reinstall`]).
    fn commit_install(&mut self, plugin: Plugin, package: &InstallationPackage) {
        for init in package.context.pic.ports() {
            self.used_port_ids.insert(init.id);
        }
        self.plugin_index
            .insert(package.plugin.clone(), self.plugins.len());
        self.plugins.push(plugin);
        self.rebuild_routes();
        self.stats.installs += 1;
    }

    /// Replaces an installed plug-in with a fresh package of the same id
    /// (the management path's convergence semantics).  The replacement is
    /// fully validated — port ids (the outgoing instance's own ids
    /// excluded), virtual-port references, binary and context — *before* the
    /// working instance is removed, so a rejected replacement leaves the old
    /// plug-in running untouched.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the plug-in is not installed, and
    /// the rejections documented on [`Pirte::install`].
    pub fn reinstall(&mut self, package: InstallationPackage) -> Result<()> {
        let old_ports: HashSet<PluginPortId> = self
            .plugin(&package.plugin)
            .ok_or_else(|| DynarError::not_found("plug-in", &package.plugin))?
            .ports()
            .iter()
            .map(|p| p.id)
            .collect();
        // The full validation (binary and context included) runs while the
        // old instance is still untouched: a rejected replacement never
        // sacrifices a working plug-in.
        let plugin = self.validate_and_instantiate(&package, Some(&old_ports))?;
        self.uninstall(&package.plugin)?;
        self.commit_install(plugin, &package);
        self.stats.reinstalls += 1;
        self.log.record(
            self.now,
            Severity::Info,
            "pirte",
            format!("replaced plug-in {}", package.plugin.name()),
        );
        Ok(())
    }

    /// Uninstalls a plug-in, stopping it first if necessary and freeing its
    /// port ids.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the plug-in is not installed.
    pub fn uninstall(&mut self, id: &PluginId) -> Result<()> {
        let index = *self
            .plugin_index
            .get(id)
            .ok_or_else(|| DynarError::not_found("plug-in", id))?;
        if self.plugins[index].state() == PluginState::Running {
            self.plugins[index].request(LifecycleRequest::Stop)?;
        }
        let removed = self.plugins.remove(index);
        for port in removed.ports() {
            self.used_port_ids.remove(&port.id);
        }
        self.plugin_index.remove(id);
        for value in self.plugin_index.values_mut() {
            if *value > index {
                *value -= 1;
            }
        }
        self.rebuild_routes();
        self.stats.uninstalls += 1;
        self.log.record(
            self.now,
            Severity::Info,
            "pirte",
            format!("uninstalled plug-in {}", id.name()),
        );
        Ok(())
    }

    /// Stops a running plug-in.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown plug-ins and
    /// [`DynarError::LifecycleViolation`] for illegal transitions.
    pub fn stop(&mut self, id: &PluginId) -> Result<()> {
        self.plugin_mut(id)?.request(LifecycleRequest::Stop)?;
        Ok(())
    }

    /// Starts a stopped (or restarts a failed/finished) plug-in.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown plug-ins and
    /// [`DynarError::LifecycleViolation`] for illegal transitions.
    pub fn start(&mut self, id: &PluginId) -> Result<()> {
        let plugin = self.plugin_mut(id)?;
        match plugin.state() {
            PluginState::Failed | PluginState::Finished => {
                plugin.request(LifecycleRequest::Restart)?;
            }
            _ => {
                plugin.request(LifecycleRequest::Start)?;
            }
        }
        Ok(())
    }

    /// Handles one management message, returning the acknowledgements (and
    /// other responses) to send back towards the server.
    pub fn handle_management(&mut self, message: ManagementMessage) -> Vec<ManagementMessage> {
        let ecu = self.ecu;
        let ack = |plugin: &PluginId, app: &str, status: AckStatus| {
            ManagementMessage::Ack(Ack {
                plugin: plugin.clone(),
                app: dynar_foundation::ids::AppId::new(app),
                ecu,
                status,
            })
        };
        match message {
            ManagementMessage::Install(package) => {
                let plugin = package.plugin.clone();
                let app = package.app.name().to_owned();
                // Reinstall-as-replace: duplicate *deliveries* never reach
                // this path (the ECM gateway deduplicates by sequence id and
                // boot epoch), so an install for an already-present plug-in
                // id is the server deliberately converging the vehicle — a
                // re-deploy after a failed operation, or a resync push.  The
                // stale instance is replaced so the fresh package applies
                // instead of bouncing off a duplicate rejection that would
                // make the failure terminal.
                let status = if self.plugin_index.contains_key(&plugin) {
                    match self.reinstall(package) {
                        Ok(()) => AckStatus::Installed,
                        Err(err) => AckStatus::Failed(err.to_string()),
                    }
                } else {
                    match self.install(package) {
                        Ok(()) => AckStatus::Installed,
                        Err(err) => AckStatus::Failed(err.to_string()),
                    }
                };
                vec![ack(&plugin, &app, status)]
            }
            ManagementMessage::Uninstall { plugin } => {
                let app = self
                    .plugin(&plugin)
                    .map(|p| p.app().name().to_owned())
                    .unwrap_or_default();
                let status = match self.uninstall(&plugin) {
                    Ok(()) => AckStatus::Uninstalled,
                    Err(err) => AckStatus::Failed(err.to_string()),
                };
                vec![ack(&plugin, &app, status)]
            }
            ManagementMessage::Stop { plugin } => {
                let app = self
                    .plugin(&plugin)
                    .map(|p| p.app().name().to_owned())
                    .unwrap_or_default();
                let status = match self.stop(&plugin) {
                    Ok(()) => AckStatus::Stopped,
                    Err(err) => AckStatus::Failed(err.to_string()),
                };
                vec![ack(&plugin, &app, status)]
            }
            ManagementMessage::Start { plugin } => {
                let app = self
                    .plugin(&plugin)
                    .map(|p| p.app().name().to_owned())
                    .unwrap_or_default();
                let status = match self.start(&plugin) {
                    Ok(()) => AckStatus::Started,
                    Err(err) => AckStatus::Failed(err.to_string()),
                };
                vec![ack(&plugin, &app, status)]
            }
            ManagementMessage::ExternalData { port, payload } => {
                if let Err(err) = self.deliver_to_port(port, payload) {
                    self.log.record(
                        self.now,
                        Severity::Warning,
                        "pirte",
                        format!("dropped external data for {port}: {err}"),
                    );
                }
                Vec::new()
            }
            other => {
                self.log.record(
                    self.now,
                    Severity::Warning,
                    "pirte",
                    format!(
                        "ignoring unexpected management message type {}",
                        other.type_id()
                    ),
                );
                Vec::new()
            }
        }
    }

    // ------------------------------------------------------------------
    // Signal routing
    // ------------------------------------------------------------------

    /// Dispatches a value that arrived on one of the hosting SW-C's required
    /// ports, according to the port's type.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the SW-C port is not mapped to a
    /// virtual port, and [`DynarError::ProtocolViolation`] for malformed
    /// type I or type II payloads.
    pub fn dispatch_swc_input(&mut self, swc_port: &str, value: Value) -> Result<()> {
        if self.config.is_type_i_in(swc_port) {
            let message = ManagementMessage::from_value(&value)?;
            let responses = self.handle_management(message);
            if let Some(out_port) = self.type_i_out_shared.clone() {
                for response in responses {
                    self.outbox
                        .push((Arc::clone(&out_port), response.to_value()));
                }
            }
            return Ok(());
        }
        let virtual_id = *self
            .swc_port_to_virtual
            .get(swc_port)
            .ok_or_else(|| DynarError::not_found("virtual port for SW-C port", swc_port))?;
        // Kind and transform are `Copy`; extracting them up front keeps the
        // hot paths below free of per-signal spec clones.
        let (kind, transform) = {
            let spec = &self.virtual_ports[&virtual_id];
            (spec.kind(), spec.transform())
        };
        match kind {
            PortKind::TypeI => {
                let message = ManagementMessage::from_value(&value)?;
                let responses = self.handle_management(message);
                if let Some(out_port) = self.type_i_out_shared.clone() {
                    for response in responses {
                        self.outbox
                            .push((Arc::clone(&out_port), response.to_value()));
                    }
                }
                Ok(())
            }
            PortKind::TypeII => {
                // Take the payload out of the envelope by value: the hot
                // multiplexing path never clones the carried signal.
                let Value::List(mut parts) = value else {
                    return Err(DynarError::ProtocolViolation(
                        "type II payload is not a list".into(),
                    ));
                };
                if parts.len() != 2 {
                    return Err(DynarError::ProtocolViolation(
                        "type II payload must carry a recipient id and a value".into(),
                    ));
                }
                let payload = parts.pop().expect("length checked");
                let recipient = parts.pop().expect("length checked").expect_i64()?;
                // Same discipline as the downlink decoder: out-of-range ids
                // are protocol violations, never silent truncations that
                // could misdeliver into an unrelated port.
                let recipient = u32::try_from(recipient).map_err(|_| {
                    DynarError::ProtocolViolation(format!(
                        "type II recipient id {recipient} out of range"
                    ))
                })?;
                self.deliver_to_port(PluginPortId::new(recipient), transform.apply(payload))
            }
            PortKind::TypeIII => {
                let transformed = transform.apply(value);
                let Some(virtual_slot) = self.virtual_slots.get(&virtual_id) else {
                    return Ok(());
                };
                let mut delivered = 0;
                let receivers = self.virtual_fanout[virtual_slot.index()].len();
                for index in 0..receivers {
                    let (plugin_index, port_index) =
                        self.virtual_fanout[virtual_slot.index()][index];
                    if let Some(port) = self.plugins[plugin_index].port_at_mut(port_index) {
                        if index + 1 == receivers {
                            port.push(transformed);
                            delivered += 1;
                            self.stats.signals_in += delivered;
                            return Ok(());
                        }
                        port.push(transformed.clone());
                        delivered += 1;
                    }
                }
                self.stats.signals_in += delivered;
                Ok(())
            }
        }
    }

    /// Delivers a value directly into a plug-in port (used for external data
    /// and by the ECM for directly linked ports).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if no installed plug-in owns the port
    /// and [`DynarError::PortDirection`] if the port is not a required port.
    pub fn deliver_to_port(&mut self, port: PluginPortId, value: Value) -> Result<()> {
        // The direct table covers the dense id range every realistic SW-C
        // lives in; ids beyond [`DIRECT_PORT_OWNER_LIMIT`] fall back to the
        // interner (correct for arbitrarily sparse ids, one hash slower).
        let owner = if (port.index() as usize) < self.port_owner_by_id.len() {
            self.port_owner_by_id[port.index() as usize]
        } else {
            self.plugin_port_slots
                .get(&port)
                .and_then(|slot| self.port_owner[slot.index()])
        };
        let Some((plugin_index, port_index)) = owner else {
            return Err(DynarError::not_found("plug-in port", port));
        };
        let slot = self.plugins[plugin_index]
            .port_at_mut(port_index)
            .expect("compiled owner table points at a live port");
        if slot.direction != PluginPortDirection::Required {
            return Err(DynarError::PortDirection {
                port: port.to_string(),
                expected: "required",
            });
        }
        slot.push(value);
        self.stats.signals_in += 1;
        Ok(())
    }

    /// Recompiles the routing tables from the installed plug-ins.  Called
    /// only from [`Pirte::install`] and [`Pirte::uninstall`] — signal traffic
    /// never invalidates the compiled plane.
    fn rebuild_routes(&mut self) {
        // Free the slots of ports that no longer exist so reinstall cycles
        // reuse them instead of growing the dense tables.
        let stale: Vec<PluginPortId> = self
            .plugin_port_slots
            .iter()
            .map(|(_, id)| *id)
            .filter(|id| !self.used_port_ids.contains(id))
            .collect();
        for id in &stale {
            self.plugin_port_slots.remove(id);
        }
        for plugin in &self.plugins {
            for port in plugin.ports() {
                self.plugin_port_slots.intern(port.id);
            }
        }

        let id_width = self
            .used_port_ids
            .iter()
            .map(|id| id.index() as usize + 1)
            .filter(|&width| width <= DIRECT_PORT_OWNER_LIMIT)
            .max()
            .unwrap_or(0);
        self.port_owner = vec![None; self.plugin_port_slots.capacity()];
        self.port_owner_by_id = vec![None; id_width];
        self.virtual_fanout = vec![Vec::new(); self.virtual_slots.capacity()];
        for (plugin_index, plugin) in self.plugins.iter().enumerate() {
            for (port_index, port) in plugin.ports().iter().enumerate() {
                let slot = self
                    .plugin_port_slots
                    .get(&port.id)
                    .expect("interned above");
                self.port_owner[slot.index()] = Some((plugin_index, port_index));
                if let Some(entry) = self.port_owner_by_id.get_mut(port.id.index() as usize) {
                    *entry = Some((plugin_index, port_index));
                }
                if port.direction == PluginPortDirection::Required {
                    if let LinkTarget::VirtualPort(virtual_id) = port.link {
                        if let Some(virtual_slot) = self.virtual_slots.get(&virtual_id) {
                            self.virtual_fanout[virtual_slot.index()]
                                .push((plugin_index, port_index));
                        }
                    }
                }
            }
        }
    }

    /// Checks that the compiled route tables exactly match a fresh compile of
    /// the installed plug-ins, with no stale slots left behind by uninstalls
    /// (used by the equivalence and property test suites).
    pub fn verify_compiled_routes(&self) -> bool {
        // Every live slot maps onto an installed port and vice versa.
        if self.plugin_port_slots.len() != self.used_port_ids.len() {
            return false;
        }
        for (slot, id) in self.plugin_port_slots.iter() {
            if !self.used_port_ids.contains(id) {
                return false;
            }
            let owns = self.port_owner[slot.index()].is_some_and(|(plugin_index, port_index)| {
                self.plugins
                    .get(plugin_index)
                    .and_then(|p| p.ports().get(port_index))
                    .is_some_and(|p| p.id == *id)
            });
            if !owns {
                return false;
            }
        }
        // Freed slots must not retain owners.
        let live_owners = self.port_owner.iter().flatten().count();
        if live_owners != self.plugin_port_slots.len() {
            return false;
        }
        // The direct-indexed owner table mirrors the slot-indexed one for
        // every live id inside the direct range: exactly those ids own
        // entries, each pointing at its port (ids beyond the range are
        // served by the interner fallback checked above).
        let direct_ids = self
            .used_port_ids
            .iter()
            .filter(|id| (id.index() as usize) < self.port_owner_by_id.len())
            .count();
        if self.port_owner_by_id.iter().flatten().count() != direct_ids {
            return false;
        }
        for id in &self.used_port_ids {
            if (id.index() as usize) >= self.port_owner_by_id.len() {
                continue;
            }
            let owns = self.port_owner_by_id[id.index() as usize].is_some_and(
                |(plugin_index, port_index)| {
                    self.plugins
                        .get(plugin_index)
                        .and_then(|p| p.ports().get(port_index))
                        .is_some_and(|p| p.id == *id)
                },
            );
            if !owns {
                return false;
            }
        }
        // The fan-out tables match a fresh compile.
        let mut expected = vec![Vec::new(); self.virtual_slots.capacity()];
        for (plugin_index, plugin) in self.plugins.iter().enumerate() {
            for (port_index, port) in plugin.ports().iter().enumerate() {
                if port.direction == PluginPortDirection::Required {
                    if let LinkTarget::VirtualPort(virtual_id) = port.link {
                        if let Some(virtual_slot) = self.virtual_slots.get(&virtual_id) {
                            expected[virtual_slot.index()].push((plugin_index, port_index));
                        }
                    }
                }
            }
        }
        expected == self.virtual_fanout
    }

    /// Width of the dense plug-in-port slot table: bounded by the high-water
    /// mark of simultaneously installed ports, not by install/uninstall churn
    /// (exposed for the reinstall property tests).
    pub fn plugin_port_slot_capacity(&self) -> usize {
        self.plugin_port_slots.capacity()
    }

    /// Reads the last value a plug-in wrote on one of its ports (diagnostics
    /// and tests).
    pub fn read_plugin_port(&self, plugin: &PluginId, port: PluginPortId) -> Option<Value> {
        self.plugin(plugin)
            .and_then(|p| p.port(port))
            .map(|p| p.last().clone())
    }

    /// Records a warning in the PIRTE log (used by the hosting SW-C when it
    /// has to drop or reroute data).
    pub fn log_warning(&mut self, message: impl Into<String>) {
        self.log
            .record(self.now, Severity::Warning, "plugin-swc", message);
    }

    /// Drains the SW-C port writes produced by plug-ins (and management
    /// acknowledgements) since the last call.  Allocates a `String` per
    /// entry for convenience; the per-tick management pass uses
    /// [`Pirte::drain_outbox_into`] instead.
    pub fn drain_outbox(&mut self) -> Vec<(String, Value)> {
        self.outbox
            .drain(..)
            .map(|(port, value)| (port.as_ref().to_owned(), value))
            .collect()
    }

    /// Drains the outbox into a caller-owned buffer (swap when empty, append
    /// otherwise) — the allocation-free variant of [`Pirte::drain_outbox`]
    /// for the per-tick management pass.
    pub fn drain_outbox_into(&mut self, into: &mut Vec<(Arc<str>, Value)>) {
        dynar_foundation::buffers::drain_swap(&mut self.outbox, into);
    }

    /// Drains the values plug-ins wrote on directly linked ports.
    pub fn take_direct_outputs(&mut self) -> Vec<(PluginId, PluginPortId, Value)> {
        std::mem::take(&mut self.direct_outputs)
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Grants every running plug-in one best-effort execution slot and
    /// returns the number of slots granted.
    pub fn run_plugins(&mut self) -> usize {
        let mut slots = 0;
        for index in 0..self.plugins.len() {
            if !self.plugins[index].state().is_schedulable() {
                continue;
            }
            slots += 1;
            let outcome = {
                // The plug-in id is borrowed for the host, not cloned — a
                // slot grant must not allocate.
                let (plugin_id, engine, ports) = self.plugins[index].split_for_run();
                let mut host = PirteHost {
                    plugin: plugin_id,
                    ports,
                    virtual_ports: &self.virtual_ports,
                    swc_ports: &self.swc_port_shared,
                    outbox: &mut self.outbox,
                    direct_outputs: &mut self.direct_outputs,
                    log: &mut self.log,
                    stats: &mut self.stats,
                    now: self.now,
                };
                engine.run_slot(&mut host)
            };
            match outcome {
                Ok(report) => {
                    self.stats.slots_granted += 1;
                    self.stats.instructions_executed += report.instructions;
                    if report.status == VmStatus::Halted {
                        self.plugins[index].record_vm_outcome(VmOutcome::Finished);
                    }
                }
                Err(err) => {
                    self.stats.slots_granted += 1;
                    self.stats.plugin_faults += 1;
                    self.log.record(
                        self.now,
                        Severity::Error,
                        "pirte",
                        format!("plug-in {} faulted: {err}", self.plugins[index].id().name()),
                    );
                    self.plugins[index].record_vm_outcome(VmOutcome::Faulted);
                }
            }
        }
        slots
    }

    /// Aggregated superinstruction execution counters across every
    /// installed plug-in — the fast plane's proof that the peephole pass
    /// fires on real workloads (always zero under
    /// [`ExecMode::Interpreter`](dynar_vm::engine::ExecMode)).
    pub fn fusion_counters(&self) -> dynar_vm::compiled::FusionCounters {
        let mut total = dynar_vm::compiled::FusionCounters::default();
        for plugin in &self.plugins {
            total.merge(&plugin.engine().fusion_counters());
        }
        total
    }

    fn plugin_mut(&mut self, id: &PluginId) -> Result<&mut Plugin> {
        let index = *self
            .plugin_index
            .get(id)
            .ok_or_else(|| DynarError::not_found("plug-in", id))?;
        Ok(&mut self.plugins[index])
    }
}

/// The [`PortHost`] adapter that exposes a plug-in's ports (and, through its
/// PLC links, the virtual ports) to the running VM.
struct PirteHost<'a> {
    plugin: &'a PluginId,
    ports: &'a mut [PluginPort],
    virtual_ports: &'a HashMap<VirtualPortId, VirtualPortSpec>,
    swc_ports: &'a HashMap<VirtualPortId, Arc<str>>,
    outbox: &'a mut Vec<(Arc<str>, Value)>,
    direct_outputs: &'a mut Vec<(PluginId, PluginPortId, Value)>,
    log: &'a mut EventLog,
    stats: &'a mut PirteStats,
    now: Tick,
}

impl PirteHost<'_> {
    fn port_mut(&mut self, slot: u32) -> Result<&mut PluginPort> {
        self.ports
            .get_mut(slot as usize)
            .ok_or_else(|| DynarError::not_found("plug-in port slot", slot))
    }
}

impl PortHost for PirteHost<'_> {
    fn read_port(&mut self, slot: u32) -> Result<Value> {
        Ok(self.port_mut(slot)?.last().clone())
    }

    fn take_port(&mut self, slot: u32) -> Result<Value> {
        let port = self.port_mut(slot)?;
        if port.direction != PluginPortDirection::Required {
            return Err(DynarError::PortDirection {
                port: port.id.to_string(),
                expected: "required",
            });
        }
        Ok(port.take().unwrap_or_default())
    }

    fn write_port(&mut self, slot: u32, value: Value) -> Result<()> {
        let (port_id, link) = {
            let port = self.port_mut(slot)?;
            if port.direction != PluginPortDirection::Provided {
                return Err(DynarError::PortDirection {
                    port: port.id.to_string(),
                    expected: "provided",
                });
            }
            port.record_output(value.clone());
            (port.id, port.link)
        };
        self.stats.signals_out += 1;
        match link {
            LinkTarget::Direct => {
                self.direct_outputs
                    .push((self.plugin.clone(), port_id, value));
            }
            LinkTarget::VirtualPort(virtual_id) => {
                let spec = self
                    .virtual_ports
                    .get(&virtual_id)
                    .ok_or_else(|| DynarError::not_found("virtual port", virtual_id))?;
                if spec.direction() != PortDataDirection::ToSystem {
                    return Err(DynarError::PortDirection {
                        port: spec.name().to_owned(),
                        expected: "to-system",
                    });
                }
                let port = Arc::clone(&self.swc_ports[&virtual_id]);
                self.outbox.push((port, spec.transform().apply(value)));
            }
            LinkTarget::RemotePluginPort { via, remote } => {
                let spec = self
                    .virtual_ports
                    .get(&via)
                    .ok_or_else(|| DynarError::not_found("virtual port", via))?;
                let wrapped = Value::List(vec![
                    Value::I64(i64::from(remote.index())),
                    spec.transform().apply(value),
                ]);
                self.outbox
                    .push((Arc::clone(&self.swc_ports[&via]), wrapped));
            }
        }
        Ok(())
    }

    fn pending(&mut self, slot: u32) -> Result<usize> {
        Ok(self.port_mut(slot)?.pending())
    }

    fn log(&mut self, message: &str) {
        self.log.record(
            self.now,
            Severity::Info,
            format!("plugin:{}", self.plugin.name()),
            message,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{InstallationContext, LinkTarget, PortInitContext, PortLinkContext};
    use crate::swc::PluginSwcConfig;
    use dynar_foundation::ids::AppId;
    use dynar_vm::assembler::assemble;

    fn config() -> PluginSwcConfig {
        PluginSwcConfig::new("plugin-swc")
            .with_type_i_ports("mgmt_in", "mgmt_out")
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(0),
                "PluginData",
                PortKind::TypeII,
                PortDataDirection::ToSystem,
                "s0_out",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(3),
                "PluginDataIn",
                PortKind::TypeII,
                PortDataDirection::ToPlugins,
                "s3_in",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(4),
                "WheelsReq",
                PortKind::TypeIII,
                PortDataDirection::ToSystem,
                "wheels_req",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(6),
                "SpeedProv",
                PortKind::TypeIII,
                PortDataDirection::ToPlugins,
                "speed_prov",
            ))
    }

    fn pirte() -> Pirte {
        Pirte::new(EcuId::new(2), config())
    }

    fn forwarder_package(name: &str) -> InstallationPackage {
        // Reads its required port 0 and forwards to provided port 1 (linked
        // to the type III WheelsReq virtual port), forever.
        let binary = assemble(
            name,
            r#"
        loop:
            port_pending 0
            push_int 0
            gt
            jump_if_false idle
            take_port 0
            write_port 1
            jump loop
        idle:
            yield
            jump loop
            "#,
        )
        .unwrap()
        .to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new()
                .with_port("in", PluginPortId::new(0), PluginPortDirection::Required)
                .with_port("out", PluginPortId::new(1), PluginPortDirection::Provided),
            PortLinkContext::new()
                .with_link(
                    PluginPortId::new(0),
                    LinkTarget::VirtualPort(VirtualPortId::new(6)),
                )
                .with_link(
                    PluginPortId::new(1),
                    LinkTarget::VirtualPort(VirtualPortId::new(4)),
                ),
        );
        InstallationPackage::new(PluginId::new(name), AppId::new("app"), binary, context)
    }

    #[test]
    fn install_run_and_route_type_iii() {
        let mut pirte = pirte();
        pirte.install(forwarder_package("fwd")).unwrap();
        assert_eq!(pirte.plugin_count(), 1);
        assert_eq!(
            pirte.plugin_states(),
            vec![(PluginId::new("fwd"), PluginState::Running)]
        );

        // A value arrives on the SW-C port behind the type III virtual port V6.
        pirte
            .dispatch_swc_input("speed_prov", Value::F64(7.5))
            .unwrap();
        pirte.run_plugins();
        let outbox = pirte.drain_outbox();
        assert_eq!(outbox, vec![("wheels_req".to_string(), Value::F64(7.5))]);
        assert!(pirte.stats().signals_in >= 1);
        assert!(pirte.stats().signals_out >= 1);
    }

    #[test]
    fn duplicate_install_and_duplicate_port_ids_are_rejected() {
        let mut pirte = pirte();
        pirte.install(forwarder_package("fwd")).unwrap();
        let err = pirte.install(forwarder_package("fwd")).unwrap_err();
        assert!(matches!(err, DynarError::Duplicate { .. }));

        // Different plug-in name, same port ids: the server is supposed to
        // assign unique ids; the PIRTE enforces it.
        let err = pirte.install(forwarder_package("other")).unwrap_err();
        assert!(matches!(err, DynarError::Duplicate { .. }));
        assert_eq!(pirte.stats().rejected_operations, 2);
    }

    #[test]
    fn plc_referencing_unknown_virtual_port_is_rejected() {
        let mut pirte = pirte();
        let binary = assemble("p", "halt").unwrap().to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new().with_port(
                "x",
                PluginPortId::new(9),
                PluginPortDirection::Provided,
            ),
            PortLinkContext::new().with_link(
                PluginPortId::new(9),
                LinkTarget::VirtualPort(VirtualPortId::new(99)),
            ),
        );
        let package =
            InstallationPackage::new(PluginId::new("p"), AppId::new("a"), binary, context);
        assert!(matches!(
            pirte.install(package).unwrap_err(),
            DynarError::NotFound { .. }
        ));
    }

    #[test]
    fn uninstall_frees_port_ids() {
        let mut pirte = pirte();
        pirte.install(forwarder_package("fwd")).unwrap();
        pirte.uninstall(&PluginId::new("fwd")).unwrap();
        assert_eq!(pirte.plugin_count(), 0);
        // The same port ids can now be used again.
        pirte.install(forwarder_package("fwd2")).unwrap();
        assert_eq!(pirte.stats().installs, 2);
        assert_eq!(pirte.stats().uninstalls, 1);
        assert!(pirte.uninstall(&PluginId::new("ghost")).is_err());
    }

    #[test]
    fn reinstall_cycles_leave_no_stale_slots() {
        let mut pirte = pirte();
        for _round in 0..20 {
            pirte.install(forwarder_package("fwd")).unwrap();
            assert!(pirte.verify_compiled_routes());
            pirte.uninstall(&PluginId::new("fwd")).unwrap();
            assert!(pirte.verify_compiled_routes());
        }
        assert_eq!(
            pirte.plugin_port_slot_capacity(),
            2,
            "20 reinstall cycles reuse the same two port slots"
        );
    }

    /// Regression: the direct-indexed owner table is capped — a package
    /// carrying an enormous port id (hostile or corrupted) must neither
    /// explode the table allocation nor lose routability: such ids are
    /// served by the interner fallback.
    #[test]
    fn huge_port_ids_use_the_interner_fallback_not_a_huge_table() {
        let mut pirte = pirte();
        let huge = PluginPortId::new(u32::MAX - 1);
        let binary = assemble("big", "yield\nhalt").unwrap().to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new().with_port("ext", huge, PluginPortDirection::Required),
            PortLinkContext::new().with_link(huge, LinkTarget::Direct),
        );
        pirte
            .install(InstallationPackage::new(
                PluginId::new("big"),
                AppId::new("a"),
                binary,
                context,
            ))
            .unwrap();
        assert!(
            pirte.verify_compiled_routes(),
            "tables stay consistent with an out-of-range id"
        );
        pirte.deliver_to_port(huge, Value::I64(1)).unwrap();
        assert_eq!(
            pirte.read_plugin_port(&PluginId::new("big"), huge),
            Some(Value::I64(1)),
            "delivery works through the fallback path"
        );
        assert!(
            pirte
                .deliver_to_port(PluginPortId::new(u32::MAX), Value::I64(2))
                .is_err(),
            "unknown huge ids still report not-found"
        );
    }

    /// Regression: a negative (or > `u32::MAX`) type II recipient id must be
    /// a protocol violation, not an `as u32` wrap into a *valid* — but
    /// wrong — port id (the same hardening the downlink decoder has).
    #[test]
    fn out_of_range_type_ii_recipients_are_rejected_not_truncated() {
        let mut pirte = pirte();
        pirte.install(forwarder_package("fwd")).unwrap();
        for bad in [-1i64, i64::from(u32::MAX) + 11] {
            let err = pirte
                .dispatch_swc_input("s3_in", Value::List(vec![Value::I64(bad), Value::I64(7)]))
                .unwrap_err();
            assert!(
                matches!(err, DynarError::ProtocolViolation(_)),
                "recipient {bad}: expected protocol violation, got {err:?}"
            );
        }
    }

    #[test]
    fn type_ii_input_unwraps_recipient_id() {
        let mut pirte = pirte();
        pirte.install(forwarder_package("fwd")).unwrap();
        // Type II payloads carry [recipient plug-in port id, value].
        pirte
            .dispatch_swc_input(
                "s3_in",
                Value::List(vec![Value::I64(0), Value::Text("turn-left".into())]),
            )
            .unwrap();
        pirte.run_plugins();
        let outbox = pirte.drain_outbox();
        assert_eq!(
            outbox,
            vec![("wheels_req".to_string(), Value::Text("turn-left".into()))]
        );
    }

    #[test]
    fn type_ii_remote_link_attaches_recipient_id() {
        let mut pirte = pirte();
        // A plug-in whose provided port 1 is linked to remote port P5 through
        // the type II virtual port V0.
        let binary = assemble("com", "take_port 0\nwrite_port 1\nyield\nhalt")
            .unwrap()
            .to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new()
                .with_port("in", PluginPortId::new(0), PluginPortDirection::Required)
                .with_port("out", PluginPortId::new(1), PluginPortDirection::Provided),
            PortLinkContext::new()
                .with_link(PluginPortId::new(0), LinkTarget::Direct)
                .with_link(
                    PluginPortId::new(1),
                    LinkTarget::RemotePluginPort {
                        via: VirtualPortId::new(0),
                        remote: PluginPortId::new(5),
                    },
                ),
        );
        pirte
            .install(InstallationPackage::new(
                PluginId::new("com"),
                AppId::new("a"),
                binary,
                context,
            ))
            .unwrap();
        pirte
            .deliver_to_port(PluginPortId::new(0), Value::I64(30))
            .unwrap();
        pirte.run_plugins();
        let outbox = pirte.drain_outbox();
        assert_eq!(
            outbox,
            vec![(
                "s0_out".to_string(),
                Value::List(vec![Value::I64(5), Value::I64(30)])
            )]
        );
    }

    #[test]
    fn direct_linked_provided_ports_surface_to_the_embedder() {
        let mut pirte = pirte();
        let binary = assemble("p", "push_int 9\nwrite_port 0\nhalt")
            .unwrap()
            .to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new().with_port(
                "out",
                PluginPortId::new(0),
                PluginPortDirection::Provided,
            ),
            PortLinkContext::new().with_link(PluginPortId::new(0), LinkTarget::Direct),
        );
        pirte
            .install(InstallationPackage::new(
                PluginId::new("p"),
                AppId::new("a"),
                binary,
                context,
            ))
            .unwrap();
        pirte.run_plugins();
        assert_eq!(
            pirte.take_direct_outputs(),
            vec![(PluginId::new("p"), PluginPortId::new(0), Value::I64(9))]
        );
        assert!(pirte.drain_outbox().is_empty());
    }

    #[test]
    fn management_messages_produce_acks() {
        let mut pirte = pirte();
        let install = ManagementMessage::Install(forwarder_package("fwd"));
        let responses = pirte.handle_management(install);
        assert_eq!(responses.len(), 1);
        match &responses[0] {
            ManagementMessage::Ack(ack) => {
                assert_eq!(ack.status, AckStatus::Installed);
                assert_eq!(ack.ecu, EcuId::new(2));
            }
            other => panic!("expected an ack, got {other:?}"),
        }

        let responses = pirte.handle_management(ManagementMessage::Uninstall {
            plugin: PluginId::new("ghost"),
        });
        match &responses[0] {
            ManagementMessage::Ack(ack) => assert!(matches!(ack.status, AckStatus::Failed(_))),
            other => panic!("expected an ack, got {other:?}"),
        }
    }

    /// Regression: an install arriving over the management path for a plug-in
    /// that is already present must *replace* it (the server converging the
    /// vehicle after a lost ack or a failed operation), not bounce off a
    /// duplicate rejection that would make the server-side `Failed` record
    /// terminal.  Direct `install()` calls keep their strict duplicate check.
    #[test]
    fn management_install_replaces_an_existing_plugin() {
        let mut pirte = pirte();
        let first = pirte.handle_management(ManagementMessage::Install(forwarder_package("fwd")));
        assert!(matches!(
            &first[0],
            ManagementMessage::Ack(ack) if ack.status == AckStatus::Installed
        ));
        assert_eq!(pirte.plugin_count(), 1);

        let again = pirte.handle_management(ManagementMessage::Install(forwarder_package("fwd")));
        assert!(
            matches!(
                &again[0],
                ManagementMessage::Ack(ack) if ack.status == AckStatus::Installed
            ),
            "the re-issued install converges instead of failing: {again:?}"
        );
        assert_eq!(pirte.plugin_count(), 1, "replaced, not duplicated");
        let stats = pirte.stats();
        assert_eq!(stats.reinstalls, 1);
        assert_eq!(stats.rejected_operations, 0);
        assert!(pirte.verify_compiled_routes());

        // A replacement that fails validation (garbage binary) leaves the
        // working instance untouched — the old plug-in is not sacrificed for
        // a package that cannot even instantiate.
        let mut broken = forwarder_package("fwd");
        broken.binary = vec![0xFF, 0xEE, 0xDD];
        let responses = pirte.handle_management(ManagementMessage::Install(broken));
        assert!(matches!(
            &responses[0],
            ManagementMessage::Ack(ack) if matches!(ack.status, AckStatus::Failed(_))
        ));
        assert_eq!(pirte.plugin_count(), 1, "old instance survives");
        assert_eq!(pirte.stats().reinstalls, 1, "no second replacement");
        assert!(pirte.verify_compiled_routes());

        // The strict API is unchanged: a direct duplicate install stays an
        // explicit rejection.
        let err = pirte.install(forwarder_package("fwd")).unwrap_err();
        assert!(matches!(err, DynarError::Duplicate { .. }));
        assert_eq!(pirte.stats().rejected_operations, 1);
    }

    #[test]
    fn type_i_input_is_decoded_and_acknowledged_on_the_out_port() {
        let mut pirte = pirte();
        let message = ManagementMessage::Install(forwarder_package("fwd")).to_value();
        pirte.dispatch_swc_input("mgmt_in", message).unwrap();
        let outbox = pirte.drain_outbox();
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].0, "mgmt_out");
        let ack = ManagementMessage::from_value(&outbox[0].1).unwrap();
        assert!(matches!(
            ack,
            ManagementMessage::Ack(Ack {
                status: AckStatus::Installed,
                ..
            })
        ));
    }

    #[test]
    fn stop_start_lifecycle_via_management() {
        let mut pirte = pirte();
        pirte.install(forwarder_package("fwd")).unwrap();
        let id = PluginId::new("fwd");
        pirte.handle_management(ManagementMessage::Stop { plugin: id.clone() });
        assert_eq!(pirte.plugin(&id).unwrap().state(), PluginState::Stopped);
        assert_eq!(pirte.run_plugins(), 0, "stopped plug-ins get no slots");
        pirte.handle_management(ManagementMessage::Start { plugin: id.clone() });
        assert_eq!(pirte.plugin(&id).unwrap().state(), PluginState::Running);
        assert_eq!(pirte.run_plugins(), 1);
    }

    #[test]
    fn faulting_plugins_are_contained() {
        let mut pirte = pirte();
        let binary = assemble("bad", "push_int 1\npush_int 0\ndiv\nhalt")
            .unwrap()
            .to_bytes();
        let context = InstallationContext::new(PortInitContext::new(), PortLinkContext::new());
        pirte
            .install(InstallationPackage::new(
                PluginId::new("bad"),
                AppId::new("a"),
                binary,
                context,
            ))
            .unwrap();
        pirte.install(forwarder_package("good")).unwrap();
        pirte.run_plugins();
        assert_eq!(
            pirte.plugin(&PluginId::new("bad")).unwrap().state(),
            PluginState::Failed
        );
        assert_eq!(
            pirte.plugin(&PluginId::new("good")).unwrap().state(),
            PluginState::Running,
            "a faulting plug-in does not take the others down"
        );
        assert_eq!(pirte.stats().plugin_faults, 1);
        assert!(pirte.log().count_at_least(Severity::Error) >= 1);
    }

    #[test]
    fn halted_plugins_finish_and_stop_consuming_slots() {
        let mut pirte = pirte();
        let binary = assemble("oneshot", "push_int 1\npop\nhalt")
            .unwrap()
            .to_bytes();
        let context = InstallationContext::new(PortInitContext::new(), PortLinkContext::new());
        pirte
            .install(InstallationPackage::new(
                PluginId::new("oneshot"),
                AppId::new("a"),
                binary,
                context,
            ))
            .unwrap();
        assert_eq!(pirte.run_plugins(), 1);
        assert_eq!(
            pirte.plugin(&PluginId::new("oneshot")).unwrap().state(),
            PluginState::Finished
        );
        assert_eq!(pirte.run_plugins(), 0);
    }

    #[test]
    fn external_data_reaches_direct_ports() {
        let mut pirte = pirte();
        let binary = assemble("com", "yield\nhalt").unwrap().to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new().with_port(
                "ext",
                PluginPortId::new(0),
                PluginPortDirection::Required,
            ),
            PortLinkContext::new().with_link(PluginPortId::new(0), LinkTarget::Direct),
        );
        pirte
            .install(InstallationPackage::new(
                PluginId::new("com"),
                AppId::new("a"),
                binary,
                context,
            ))
            .unwrap();
        let responses = pirte.handle_management(ManagementMessage::ExternalData {
            port: PluginPortId::new(0),
            payload: Value::Text("Wheels:30".into()),
        });
        assert!(responses.is_empty());
        assert_eq!(
            pirte.read_plugin_port(&PluginId::new("com"), PluginPortId::new(0)),
            Some(Value::Text("Wheels:30".into()))
        );
    }

    #[test]
    fn unknown_swc_port_is_reported() {
        let mut pirte = pirte();
        assert!(matches!(
            pirte
                .dispatch_swc_input("ghost_port", Value::Void)
                .unwrap_err(),
            DynarError::NotFound { .. }
        ));
    }
}
