//! Plug-in life-cycle states and transitions.
//!
//! The paper handles updates pragmatically "by mandating a plug-in to be
//! stopped before being updated, and then restarted fresh" (§5).  The state
//! machine here encodes that rule: a plug-in must pass through `Stopped`
//! before it may be updated or uninstalled, and a faulted plug-in can only be
//! restarted fresh.

use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};

/// The life-cycle state of one installed plug-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PluginState {
    /// Installed but not yet started.
    #[default]
    Installed,
    /// Scheduled for execution by the PIRTE.
    Running,
    /// Stopped by management; keeps its configuration but is not scheduled.
    Stopped,
    /// Terminated after a fault or budget violation; not scheduled.
    Failed,
    /// Finished executing its program (`halt`); not scheduled.
    Finished,
}

impl PluginState {
    /// Returns `true` if the PIRTE should grant execution slots in this state.
    pub fn is_schedulable(self) -> bool {
        matches!(self, PluginState::Running)
    }

    /// Returns `true` if the plug-in may be uninstalled from this state
    /// without first being stopped.
    pub fn allows_uninstall(self) -> bool {
        !matches!(self, PluginState::Running)
    }

    /// Checks a requested transition, returning the new state when legal.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::LifecycleViolation`] for illegal transitions.
    pub fn transition(self, plugin: &str, request: LifecycleRequest) -> Result<PluginState> {
        use LifecycleRequest::*;
        use PluginState::*;
        let next = match (self, request) {
            (Installed, Start) => Some(Running),
            (Stopped, Start) => Some(Running),
            (Failed, Restart) | (Finished, Restart) | (Stopped, Restart) => Some(Running),
            (Running, Stop) => Some(Stopped),
            (Installed, Stop) => Some(Stopped),
            (Running, Fail) | (Installed, Fail) => Some(Failed),
            (Running, Finish) => Some(Finished),
            _ => None,
        };
        next.ok_or_else(|| DynarError::LifecycleViolation {
            plugin: plugin.to_owned(),
            from: self.to_string(),
            requested: request.to_string(),
        })
    }
}

impl fmt::Display for PluginState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PluginState::Installed => "installed",
            PluginState::Running => "running",
            PluginState::Stopped => "stopped",
            PluginState::Failed => "failed",
            PluginState::Finished => "finished",
        };
        f.write_str(name)
    }
}

/// A life-cycle transition request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LifecycleRequest {
    /// Begin scheduling the plug-in.
    Start,
    /// Stop scheduling the plug-in, keeping its configuration.
    Stop,
    /// Restart the plug-in from a fresh VM state.
    Restart,
    /// Record that the plug-in faulted.
    Fail,
    /// Record that the plug-in ran to completion.
    Finish,
}

impl fmt::Display for LifecycleRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LifecycleRequest::Start => "start",
            LifecycleRequest::Stop => "stop",
            LifecycleRequest::Restart => "restart",
            LifecycleRequest::Fail => "fail",
            LifecycleRequest::Finish => "finish",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LifecycleRequest::*;
    use PluginState::*;

    #[test]
    fn normal_life_cycle() {
        let state = Installed;
        let state = state.transition("p", Start).unwrap();
        assert_eq!(state, Running);
        let state = state.transition("p", Stop).unwrap();
        assert_eq!(state, Stopped);
        let state = state.transition("p", Start).unwrap();
        assert_eq!(state, Running);
        let state = state.transition("p", Finish).unwrap();
        assert_eq!(state, Finished);
        assert_eq!(state.transition("p", Restart).unwrap(), Running);
    }

    #[test]
    fn running_plugin_cannot_be_uninstalled_without_stop() {
        assert!(!Running.allows_uninstall());
        assert!(Stopped.allows_uninstall());
        assert!(Failed.allows_uninstall());
        assert!(Installed.allows_uninstall());
    }

    #[test]
    fn illegal_transitions_are_reported() {
        let err = Stopped.transition("COM", Finish).unwrap_err();
        match err {
            DynarError::LifecycleViolation {
                plugin,
                from,
                requested,
            } => {
                assert_eq!(plugin, "COM");
                assert_eq!(from, "stopped");
                assert_eq!(requested, "finish");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(Finished.transition("p", Start).is_err());
        assert!(
            Failed.transition("p", Start).is_err(),
            "failed plug-ins need a restart"
        );
    }

    #[test]
    fn fault_handling() {
        let state = Installed.transition("p", Start).unwrap();
        let state = state.transition("p", Fail).unwrap();
        assert_eq!(state, Failed);
        assert!(!state.is_schedulable());
        assert_eq!(state.transition("p", Restart).unwrap(), Running);
    }

    #[test]
    fn only_running_is_schedulable() {
        for state in [Installed, Stopped, Failed, Finished] {
            assert!(!state.is_schedulable(), "{state}");
        }
        assert!(Running.is_schedulable());
    }
}
