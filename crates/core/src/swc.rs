//! The plug-in SW-C: an ordinary AUTOSAR component wrapping a PIRTE.
//!
//! "AUTOSAR SW-Cs sandbox in the plug-ins, allowing them to interact with the
//! rest of the system through standard SW-C ports, while the underlying
//! concepts, such as the RTE, BSW and legacy ASW remain unchanged" (§3.1.1).
//! [`PluginSwc`] is that sandbox: it implements the RTE's
//! [`ComponentBehavior`] trait, forwards everything arriving on its SW-C
//! ports into the embedded [`Pirte`], grants the plug-ins their execution
//! slots and writes whatever the PIRTE produced back out through the RTE.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{EcuId, PortId};
use dynar_foundation::value::Value;
use dynar_rte::component::{ComponentBehavior, RteContext, RunnableSpec, SwcDescriptor, Trigger};
use dynar_rte::port::{PortDirection, PortSpec};
use dynar_vm::budget::Budget;
use dynar_vm::engine::ExecMode;

use crate::pirte::Pirte;
use crate::virtual_port::{PortDataDirection, VirtualPortSpec};

/// Name of the management runnable of every plug-in SW-C.
pub const PIRTE_RUNNABLE: &str = "pirte_main";

/// Queue length used for the required SW-C ports of a plug-in SW-C.
const INPUT_QUEUE_LENGTH: usize = 32;

/// A shared handle to a [`Pirte`], used by the hosting component behaviour,
/// the ECM and the simulation harness alike.
pub type SharedPirte = Arc<Mutex<Pirte>>;

/// The OEM-provided static configuration of one plug-in SW-C: its virtual
/// ports, its type I management ports and the budget granted to each plug-in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PluginSwcConfig {
    name: String,
    priority: u8,
    virtual_ports: Vec<VirtualPortSpec>,
    type_i_in: Option<String>,
    type_i_out: Option<String>,
    plugin_budget: Budget,
    exec_mode: ExecMode,
}

impl PluginSwcConfig {
    /// Creates a configuration with no virtual ports and default budgets.
    pub fn new(name: impl Into<String>) -> Self {
        PluginSwcConfig {
            name: name.into(),
            priority: 2,
            virtual_ports: Vec::new(),
            type_i_in: None,
            type_i_out: None,
            plugin_budget: Budget::default(),
            exec_mode: ExecMode::default(),
        }
    }

    /// Adds a virtual port to the static API.
    #[must_use]
    pub fn with_virtual_port(mut self, spec: VirtualPortSpec) -> Self {
        self.virtual_ports.push(spec);
        self
    }

    /// Declares the pair of type I SW-C ports connecting this SW-C with the
    /// ECM (an inbound management port and an outbound acknowledgement port).
    #[must_use]
    pub fn with_type_i_ports(
        mut self,
        inbound: impl Into<String>,
        outbound: impl Into<String>,
    ) -> Self {
        self.type_i_in = Some(inbound.into());
        self.type_i_out = Some(outbound.into());
        self
    }

    /// Sets the OS task priority of the hosting component.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the best-effort budget granted to each plug-in.
    #[must_use]
    pub fn with_plugin_budget(mut self, budget: Budget) -> Self {
        self.plugin_budget = budget;
        self
    }

    /// The component instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The virtual ports of the static API.
    pub fn virtual_ports(&self) -> &[VirtualPortSpec] {
        &self.virtual_ports
    }

    /// The inbound type I SW-C port name, if the SW-C is connected to an ECM.
    pub fn type_i_in(&self) -> Option<&str> {
        self.type_i_in.as_deref()
    }

    /// The outbound type I SW-C port name, if the SW-C is connected to an ECM.
    pub fn type_i_out(&self) -> Option<&str> {
        self.type_i_out.as_deref()
    }

    /// Returns `true` if `port` is the inbound type I SW-C port.
    pub fn is_type_i_in(&self, port: &str) -> bool {
        self.type_i_in.as_deref() == Some(port)
    }

    /// Selects the VM execution plane for every plug-in hosted by this
    /// SW-C (compiled fast plane by default; `Shadow` runs both planes in
    /// lock-step asserting equivalence).
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// The budget granted to each plug-in hosted by this SW-C.
    pub fn plugin_budget(&self) -> Budget {
        self.plugin_budget
    }

    /// The VM execution plane plug-ins of this SW-C run on.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// The names of the SW-C ports on which data arrives for the PIRTE: the
    /// type I inbound port plus every virtual port whose data flows towards
    /// the plug-ins.
    pub fn input_ports(&self) -> Vec<String> {
        let mut ports: Vec<String> = self.type_i_in.iter().cloned().collect();
        ports.extend(
            self.virtual_ports
                .iter()
                .filter(|v| v.direction() == PortDataDirection::ToPlugins)
                .map(|v| v.swc_port().to_owned()),
        );
        ports
    }

    /// Checks internal consistency: unique virtual-port ids, names and SW-C
    /// ports, and type I ports distinct from virtual-port SW-C ports.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] on the first conflict.
    pub fn validate(&self) -> Result<()> {
        for (i, spec) in self.virtual_ports.iter().enumerate() {
            let earlier = &self.virtual_ports[..i];
            if earlier.iter().any(|s| s.id() == spec.id()) {
                return Err(DynarError::invalid_config(format!(
                    "virtual port id {} declared twice",
                    spec.id()
                )));
            }
            if earlier.iter().any(|s| s.name() == spec.name()) {
                return Err(DynarError::invalid_config(format!(
                    "virtual port name {} declared twice",
                    spec.name()
                )));
            }
            if earlier.iter().any(|s| s.swc_port() == spec.swc_port()) {
                return Err(DynarError::invalid_config(format!(
                    "SW-C port {} mapped to two virtual ports",
                    spec.swc_port()
                )));
            }
            if self.type_i_in.as_deref() == Some(spec.swc_port())
                || self.type_i_out.as_deref() == Some(spec.swc_port())
            {
                return Err(DynarError::invalid_config(format!(
                    "SW-C port {} used both as a type I port and a virtual port",
                    spec.swc_port()
                )));
            }
        }
        if self.type_i_in.is_some() && self.type_i_in == self.type_i_out {
            return Err(DynarError::invalid_config(
                "type I inbound and outbound ports must differ",
            ));
        }
        Ok(())
    }

    /// Builds the AUTOSAR component descriptor for this configuration: one
    /// SW-C port per virtual port, the pair of type I ports, and the periodic
    /// management runnable that drives the PIRTE.
    ///
    /// # Errors
    ///
    /// Propagates [`PluginSwcConfig::validate`] failures.
    pub fn descriptor(&self) -> Result<SwcDescriptor> {
        self.validate()?;
        let mut descriptor = SwcDescriptor::new(&self.name).with_priority(self.priority);
        if let (Some(inbound), Some(outbound)) = (&self.type_i_in, &self.type_i_out) {
            descriptor = descriptor
                .with_port(PortSpec::queued(
                    inbound,
                    PortDirection::Required,
                    INPUT_QUEUE_LENGTH,
                ))
                .with_port(PortSpec::sender_receiver(outbound, PortDirection::Provided));
        }
        for spec in &self.virtual_ports {
            let port = match spec.direction() {
                PortDataDirection::ToPlugins => {
                    PortSpec::queued(spec.swc_port(), PortDirection::Required, INPUT_QUEUE_LENGTH)
                }
                PortDataDirection::ToSystem => {
                    PortSpec::sender_receiver(spec.swc_port(), PortDirection::Provided)
                }
            };
            descriptor = descriptor.with_port(port);
        }
        descriptor =
            descriptor.with_runnable(RunnableSpec::new(PIRTE_RUNNABLE, Trigger::Periodic(1)));
        Ok(descriptor)
    }
}

/// The component behaviour of a plug-in SW-C.
#[derive(Debug)]
pub struct PluginSwc {
    pirte: SharedPirte,
    input_ports: Vec<String>,
    /// Input ports resolved to their RTE ids on the first runnable pass, so
    /// the per-tick drain skips the name lookup.
    resolved_inputs: Option<Vec<(String, PortId)>>,
    /// Reused outbox drain buffer (ping-pongs with the PIRTE's outbox).
    outbox_scratch: Vec<(Arc<str>, Value)>,
}

impl PluginSwc {
    /// Creates a plug-in SW-C behaviour and the shared PIRTE handle the rest
    /// of the platform (ECM, simulation harness, tests) uses to reach it.
    pub fn create(ecu: EcuId, config: PluginSwcConfig) -> (Self, SharedPirte) {
        let input_ports = config.input_ports();
        let pirte = Arc::new(Mutex::new(Pirte::new(ecu, config)));
        (
            PluginSwc {
                pirte: Arc::clone(&pirte),
                input_ports,
                resolved_inputs: None,
                outbox_scratch: Vec::new(),
            },
            pirte,
        )
    }

    /// The shared PIRTE handle.
    pub fn pirte(&self) -> SharedPirte {
        Arc::clone(&self.pirte)
    }

    /// Resolves input port names to their RTE port ids, for the id-based
    /// [`PluginSwc::pirte_pass`].  Called once per behaviour instance (the
    /// wiring never changes after registration).
    pub fn resolve_inputs(
        input_ports: &[String],
        ctx: &RteContext<'_>,
    ) -> Result<Vec<(String, PortId)>> {
        input_ports
            .iter()
            .map(|name| Ok((name.clone(), ctx.port_id(name)?)))
            .collect()
    }

    /// One management pass: feed inputs to the PIRTE, grant execution slots,
    /// flush outputs.  Exposed for reuse by the ECM behaviour.
    ///
    /// `input_ports` carries pre-resolved port ids (see
    /// [`PluginSwc::resolve_inputs`]) and `outbox_scratch` a reusable drain
    /// buffer, keeping the steady-state pass free of allocations and name
    /// lookups.
    pub fn pirte_pass(
        pirte: &SharedPirte,
        input_ports: &[(String, PortId)],
        outbox_scratch: &mut Vec<(Arc<str>, Value)>,
        ctx: &mut RteContext<'_>,
    ) -> Result<()> {
        let mut pirte = pirte.lock();
        for (name, port_id) in input_ports {
            while let Some(value) = ctx.receive_by_id(*port_id)? {
                if let Err(err) = pirte.dispatch_swc_input(name, value) {
                    pirte.log_warning(format!("dropped input on {name}: {err}"));
                }
            }
        }
        pirte.run_plugins();
        debug_assert!(outbox_scratch.is_empty());
        pirte.drain_outbox_into(outbox_scratch);
        for (port, value) in outbox_scratch.drain(..) {
            if let Err(err) = ctx.write(&port, value) {
                pirte.log_warning(format!("failed to write SW-C port {port}: {err}"));
            }
        }
        Ok(())
    }
}

impl ComponentBehavior for PluginSwc {
    fn on_runnable(&mut self, _runnable: &str, ctx: &mut RteContext<'_>) -> Result<()> {
        if self.resolved_inputs.is_none() {
            self.resolved_inputs = Some(Self::resolve_inputs(&self.input_ports, ctx)?);
        }
        let resolved = self.resolved_inputs.take().expect("resolved above");
        let result = Self::pirte_pass(&self.pirte, &resolved, &mut self.outbox_scratch, ctx);
        self.resolved_inputs = Some(resolved);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{InstallationContext, LinkTarget, PortInitContext, PortLinkContext};
    use crate::message::InstallationPackage;
    use crate::plugin::PluginPortDirection;
    use crate::virtual_port::PortKind;
    use dynar_foundation::ids::{AppId, PluginId, PluginPortId, VirtualPortId};
    use dynar_foundation::value::Value;
    use dynar_rte::ecu::Ecu;
    use dynar_vm::assembler::assemble;

    fn config() -> PluginSwcConfig {
        PluginSwcConfig::new("plugin-swc")
            .with_type_i_ports("mgmt_in", "mgmt_out")
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(0),
                "SpeedIn",
                PortKind::TypeIII,
                PortDataDirection::ToPlugins,
                "speed_in",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(1),
                "SpeedOut",
                PortKind::TypeIII,
                PortDataDirection::ToSystem,
                "speed_out",
            ))
    }

    fn doubler_package() -> InstallationPackage {
        let binary = assemble(
            "doubler",
            r#"
        loop:
            port_pending 0
            push_int 0
            gt
            jump_if_false idle
            take_port 0
            push_int 2
            mul
            write_port 1
            jump loop
        idle:
            yield
            jump loop
            "#,
        )
        .unwrap()
        .to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new()
                .with_port("in", PluginPortId::new(0), PluginPortDirection::Required)
                .with_port("out", PluginPortId::new(1), PluginPortDirection::Provided),
            PortLinkContext::new()
                .with_link(
                    PluginPortId::new(0),
                    LinkTarget::VirtualPort(VirtualPortId::new(0)),
                )
                .with_link(
                    PluginPortId::new(1),
                    LinkTarget::VirtualPort(VirtualPortId::new(1)),
                ),
        );
        InstallationPackage::new(
            PluginId::new("doubler"),
            AppId::new("demo"),
            binary,
            context,
        )
    }

    #[test]
    fn config_validation_catches_conflicts() {
        assert!(config().validate().is_ok());

        let dup_swc_port = config().with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(9),
            "Other",
            PortKind::TypeIII,
            PortDataDirection::ToPlugins,
            "speed_in",
        ));
        assert!(dup_swc_port.validate().is_err());

        let dup_id = config().with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(0),
            "Other",
            PortKind::TypeIII,
            PortDataDirection::ToPlugins,
            "other_port",
        ));
        assert!(dup_id.validate().is_err());

        let same_type_i = PluginSwcConfig::new("x").with_type_i_ports("a", "a");
        assert!(same_type_i.validate().is_err());
    }

    #[test]
    fn descriptor_reflects_config() {
        let descriptor = config().descriptor().unwrap();
        assert_eq!(descriptor.name(), "plugin-swc");
        assert_eq!(descriptor.ports().len(), 4);
        assert!(descriptor.port("mgmt_in").is_some());
        assert!(descriptor.port("speed_out").is_some());
        assert_eq!(descriptor.runnables().len(), 1);
        assert_eq!(descriptor.runnables()[0].name(), PIRTE_RUNNABLE);
    }

    #[test]
    fn input_ports_cover_type_i_and_inbound_virtual_ports() {
        let ports = config().input_ports();
        assert_eq!(ports, vec!["mgmt_in".to_string(), "speed_in".to_string()]);
    }

    #[test]
    fn plugin_swc_runs_inside_an_ecu() {
        let mut ecu = Ecu::new(EcuId::new(1));
        let (behavior, pirte) = PluginSwc::create(EcuId::new(1), config());
        let descriptor = config().descriptor().unwrap();
        let swc = ecu.add_component(descriptor, Box::new(behavior)).unwrap();

        // Install the doubler through the shared handle (the ECM would do the
        // same through the type I port).
        pirte.lock().install(doubler_package()).unwrap();

        // Feed a value into the SW-C port behind the inbound virtual port.
        let speed_in = ecu.rte().port_id(swc, "speed_in").unwrap();
        // Writing on a required port is the RTE's job when a connected
        // provider produces data; simulate it via deliver_inbound mapping.
        let frame = dynar_bus::frame::CanId::new(0x10).unwrap();
        ecu.map_signal_in(frame, swc, "speed_in").unwrap();
        ecu.deliver_inbound(frame, Value::I64(21));
        let _ = speed_in;

        ecu.run(3).unwrap();
        assert_eq!(
            ecu.rte().read_port_by_name(swc, "speed_out").unwrap(),
            Value::I64(42)
        );
        assert!(pirte.lock().stats().signals_out >= 1);
    }

    #[test]
    fn management_over_type_i_port_installs_and_acknowledges() {
        let mut ecu = Ecu::new(EcuId::new(1));
        let (behavior, pirte) = PluginSwc::create(EcuId::new(1), config());
        let descriptor = config().descriptor().unwrap();
        let swc = ecu.add_component(descriptor, Box::new(behavior)).unwrap();

        let frame = dynar_bus::frame::CanId::new(0x20).unwrap();
        ecu.map_signal_in(frame, swc, "mgmt_in").unwrap();
        let message = crate::message::ManagementMessage::Install(doubler_package());
        ecu.deliver_inbound(frame, message.to_value());
        ecu.run(2).unwrap();

        assert_eq!(pirte.lock().plugin_count(), 1);
        let ack_value = ecu.rte().read_port_by_name(swc, "mgmt_out").unwrap();
        let ack = crate::message::ManagementMessage::from_value(&ack_value).unwrap();
        assert!(matches!(
            ack,
            crate::message::ManagementMessage::Ack(crate::message::Ack {
                status: crate::message::AckStatus::Installed,
                ..
            })
        ));
    }
}
