//! Criterion benchmarks regenerating the paper's figures and the
//! characterization experiments listed in DESIGN.md / EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dynar_core::context::{InstallationContext, LinkTarget, PortInitContext, PortLinkContext};
use dynar_core::message::InstallationPackage;
use dynar_core::pirte::Pirte;
use dynar_core::plugin::PluginPortDirection;
use dynar_core::swc::PluginSwcConfig;
use dynar_core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar_foundation::ids::{AppId, EcuId, PluginId, PluginPortId, SwcId, VirtualPortId};
use dynar_foundation::value::Value;
use dynar_rte::component::SwcDescriptor;
use dynar_rte::port::{PortDirection, PortSpec};
use dynar_rte::rte::Rte;
use dynar_server::baseline::ReflashBaseline;
use dynar_server::campaign::{CampaignId, CampaignSpec, HealthGate, VehicleSelector, WavePlan};
use dynar_server::server::TrustedServer;
use dynar_sim::scenario::fleet::{FleetScenario, FleetScenarioConfig};
use dynar_sim::scenario::remote_car::{remote_control_app, RemoteCarScenario};
use dynar_vm::assembler::assemble;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

/// F3 — the Figure 3 signal chain: phone command to actuator, end to end.
fn fig3_signal_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_signal_chain");
    let mut scenario = RemoteCarScenario::build().expect("scenario builds");
    scenario.install_app().expect("installation completes");
    group.bench_function("drive_10_ticks", |b| {
        b.iter(|| scenario.drive(10).expect("drive"));
    });
    group.finish();
}

/// E1 — deployment: dynamic plug-in installation planning vs. the classical
/// full-ECU re-flash baseline.
fn e1_deployment(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_deployment");
    let server = scenario_server_with_apps(0);
    let vehicle = dynar_foundation::ids::VehicleId::new("VIN-MODEL-CAR-1");
    group.bench_function("plan_remote_control_app", |b| {
        b.iter(|| {
            server
                .plan_deployment(&vehicle, &AppId::new("remote-control"))
                .expect("plan succeeds")
        });
    });
    group.bench_function("baseline_reflash_model", |b| {
        let baseline = ReflashBaseline::default();
        b.iter(|| baseline.deployment_ticks(2));
    });
    group.finish();
}

fn bench_hw() -> dynar_server::model::HwConf {
    dynar_server::model::HwConf::new()
        .with_ecu(EcuId::new(1), 512)
        .with_ecu(EcuId::new(2), 512)
}

fn bench_system() -> dynar_server::model::SystemSwConf {
    use dynar_server::model::{PluginSwcDecl, SystemSwConf, VirtualPortDecl, VirtualPortKindDecl};
    SystemSwConf::new("model-car")
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(1),
            swc_name: "ecm-swc".into(),
            is_ecm: true,
            virtual_ports: vec![VirtualPortDecl {
                id: VirtualPortId::new(0),
                name: "PluginData".into(),
                kind: VirtualPortKindDecl::TypeII {
                    peer: EcuId::new(2),
                },
            }],
        })
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(2),
            swc_name: "plugin-swc-2".into(),
            is_ecm: false,
            virtual_ports: vec![
                VirtualPortDecl {
                    id: VirtualPortId::new(3),
                    name: "PluginDataIn".into(),
                    kind: VirtualPortKindDecl::TypeII {
                        peer: EcuId::new(1),
                    },
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(4),
                    name: "WheelsReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(5),
                    name: "SpeedReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(6),
                    name: "SpeedProv".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
            ],
        })
}

/// E2 — PIRTE mediation overhead: plug-in port → virtual port → SW-C port
/// versus a direct RTE local route.
fn e2_mediation_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_mediation_overhead");

    // Baseline: a direct RTE route between two built-in SW-Cs.
    let mut rte = Rte::new();
    let producer = SwcId::new(EcuId::new(0), 0);
    let consumer = SwcId::new(EcuId::new(0), 1);
    rte.register_component(
        producer,
        &SwcDescriptor::new("producer")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided)),
    )
    .unwrap();
    rte.register_component(
        consumer,
        &SwcDescriptor::new("consumer")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required)),
    )
    .unwrap();
    let out = rte.port_id(producer, "out").unwrap();
    let inp = rte.port_id(consumer, "in").unwrap();
    rte.connect(out, inp).unwrap();
    group.bench_function("direct_rte_route", |b| {
        b.iter(|| {
            rte.write_port(out, Value::F64(3.5)).unwrap();
            rte.take_port(inp).unwrap()
        });
    });

    // PIRTE-mediated: value enters a type III virtual port, a plug-in
    // forwards it, and it leaves through another type III virtual port.
    let config = PluginSwcConfig::new("plugin-swc")
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(0),
            "In",
            PortKind::TypeIII,
            PortDataDirection::ToPlugins,
            "swc_in",
        ))
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(1),
            "Out",
            PortKind::TypeIII,
            PortDataDirection::ToSystem,
            "swc_out",
        ));
    let mut pirte = Pirte::new(EcuId::new(1), config);
    let binary = assemble(
        "fwd",
        "loop:\n take_port 0\n write_port 1\n yield\n jump loop",
    )
    .unwrap()
    .to_bytes();
    let context = InstallationContext::new(
        PortInitContext::new()
            .with_port("in", PluginPortId::new(0), PluginPortDirection::Required)
            .with_port("out", PluginPortId::new(1), PluginPortDirection::Provided),
        PortLinkContext::new()
            .with_link(
                PluginPortId::new(0),
                LinkTarget::VirtualPort(VirtualPortId::new(0)),
            )
            .with_link(
                PluginPortId::new(1),
                LinkTarget::VirtualPort(VirtualPortId::new(1)),
            ),
    );
    pirte
        .install(InstallationPackage::new(
            PluginId::new("fwd"),
            AppId::new("bench"),
            binary,
            context,
        ))
        .unwrap();
    group.bench_function("pirte_mediated_route", |b| {
        b.iter(|| {
            pirte.dispatch_swc_input("swc_in", Value::F64(3.5)).unwrap();
            pirte.run_plugins();
            pirte.drain_outbox()
        });
    });
    group.finish();
}

/// E3 — trusted-server scalability: compatibility check plus context
/// generation as the installed catalogue grows.
fn e3_server_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_server_scalability");
    for apps in [1usize, 16, 64] {
        let server = scenario_server_with_apps(apps);
        let vehicle = dynar_foundation::ids::VehicleId::new("VIN-MODEL-CAR-1");
        group.bench_with_input(
            BenchmarkId::new("plan_with_catalogue", apps),
            &apps,
            |b, _| {
                b.iter(|| {
                    server
                        .plan_deployment(&vehicle, &AppId::new("remote-control"))
                        .expect("plan succeeds")
                });
            },
        );
    }
    group.finish();
}

fn scenario_server_with_apps(extra_apps: usize) -> TrustedServer {
    let mut server = TrustedServer::new();
    let user = dynar_foundation::ids::UserId::new("alice");
    let vehicle = dynar_foundation::ids::VehicleId::new("VIN-MODEL-CAR-1");
    server.create_user(user.clone()).unwrap();
    server
        .register_vehicle(vehicle.clone(), bench_hw(), bench_system())
        .unwrap();
    server.bind_vehicle(&user, &vehicle).unwrap();
    server.upload_app(remote_control_app().unwrap()).unwrap();
    for index in 0..extra_apps {
        let mut app = remote_control_app().unwrap();
        app.id = AppId::new(format!("filler-{index}"));
        server.upload_app(app).unwrap();
    }
    server
}

/// E6 — ablation: any number of plug-in ports multiplexed over one type II
/// SW-C port pair (the paper's design) vs. the routing work growing with the
/// number of ports.
fn e6_port_multiplexing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_port_multiplexing");
    for ports in [1u32, 16, 64] {
        let mut pirte = multiplexing_pirte(ports);
        group.bench_with_input(
            BenchmarkId::new("dispatch_type_ii", ports),
            &ports,
            |b, &ports| {
                let mut next = 0u32;
                b.iter(|| {
                    let recipient = next % ports;
                    next = next.wrapping_add(1);
                    pirte
                        .dispatch_swc_input(
                            "s_in",
                            Value::List(vec![Value::I64(i64::from(recipient)), Value::I64(7)]),
                        )
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

fn multiplexing_pirte(ports: u32) -> Pirte {
    let config = PluginSwcConfig::new("mux").with_virtual_port(VirtualPortSpec::new(
        VirtualPortId::new(0),
        "In",
        PortKind::TypeII,
        PortDataDirection::ToPlugins,
        "s_in",
    ));
    let mut pirte = Pirte::new(EcuId::new(1), config);
    let binary = assemble("sink", "yield\nhalt").unwrap().to_bytes();
    let mut pic = PortInitContext::new();
    for port in 0..ports {
        pic = pic.with_port(
            format!("p{port}"),
            PluginPortId::new(port),
            PluginPortDirection::Required,
        );
    }
    let context = InstallationContext::new(pic, PortLinkContext::new());
    pirte
        .install(InstallationPackage::new(
            PluginId::new("sink"),
            AppId::new("bench"),
            binary,
            context,
        ))
        .unwrap();
    pirte
}

/// F-scale — fleet tick throughput: one batched scheduler round across N
/// four-ECU vehicles with live signal chains (the hot path of every
/// federated-scale experiment).
fn bench_fleet_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_fleet_tick");
    // 500 vehicles (2000 ECUs) was the "towards thousands of vehicles"
    // datapoint; 10000 is past it.  The tick must stay linear in fleet
    // size, which only holds while the steady-state transport and server
    // paths stay O(1) per vehicle (O(active) downlink sweep) and
    // allocation-free.  `DYNAR_BENCH_100K=1` adds the 100k-vehicle
    // datapoint (fleet construction alone takes minutes, so it stays
    // opt-in).
    let mut sizes = vec![10usize, 50, 100, 500, 10_000];
    if std::env::var_os("DYNAR_BENCH_100K").is_some() {
        sizes.push(100_000);
    }
    for vehicles in sizes {
        let mut scenario = FleetScenario::build(vehicles).expect("fleet builds");
        let wave = if vehicles >= 500 { 50 } else { 10 };
        scenario
            .install_telemetry(wave)
            .expect("install waves complete");
        group.bench_with_input(BenchmarkId::new("tick", vehicles), &vehicles, |b, _| {
            b.iter(|| scenario.fleet.step().expect("fleet step"));
        });
        // Durability overhead, measured back-to-back with its serial twin:
        // the same 50-vehicle steady-state tick with the write-ahead journal
        // enabled (compaction every 256 records), so the price of durability
        // is a datapoint next to `tick/50` rather than a guess.
        // scripts/bench_compare.sh gates the gap between the two — adjacency
        // matters, because minutes of drift between the measurement windows
        // on a noisy runner would swamp the single-digit true overhead.
        if vehicles == 50 {
            let mut scenario = FleetScenario::build(50).expect("fleet builds");
            scenario.fleet.server.enable_journal(256);
            scenario
                .install_telemetry(10)
                .expect("install waves complete");
            group.bench_function("tick_with_journal/50", |b| {
                b.iter(|| scenario.fleet.step().expect("fleet step"));
            });
        }
        // Campaign-plane overhead, measured the same way: the identical
        // 50-vehicle steady-state tick while a rollout campaign is held
        // mid-wave by an unreachable soak gate — the whole fleet exposed,
        // every install acknowledged, the health gate re-evaluated on every
        // round.  scripts/bench_compare.sh gates the gap against `tick/50`
        // (BENCH_CAMPAIGN_OVERHEAD_PCT), so the price of orchestration is a
        // datapoint, not a guess.
        if vehicles == 50 {
            let mut scenario = FleetScenario::build(50).expect("fleet builds");
            scenario
                .install_telemetry(10)
                .expect("install waves complete");
            let user = scenario.user.clone();
            let spec = CampaignSpec {
                id: CampaignId::new("bench-rollout"),
                app: AppId::new(dynar_sim::scenario::fleet::APP_TELEMETRY_V2),
                replaces: Some(AppId::new(dynar_sim::scenario::fleet::APP_TELEMETRY)),
                selector: VehicleSelector::All,
                plan: WavePlan {
                    canary: 50,
                    ramp_percent: Vec::new(),
                },
                gate: HealthGate {
                    min_soak_ticks: u64::MAX,
                    pause_failed: 0,
                    abort_failed: 0,
                },
            };
            scenario
                .fleet
                .server
                .create_campaign(&user, spec)
                .expect("campaign creates");
            scenario.fleet.run(120).expect("update wave converges");
            group.bench_function("campaign_tick/50", |b| {
                b.iter(|| scenario.fleet.step().expect("fleet step"));
            });
        }
    }
    // The sharded control plane: the same steady-state tick fanned out over
    // 8 server shards on the worker pool.  Compared against `tick` at equal
    // fleet size by scripts/bench_compare.sh (BENCH_PAR_SPEEDUP): near the
    // core count speedup on a multi-core runner, pool overhead on one core.
    {
        let par_sizes: &[usize] = if std::env::var_os("DYNAR_BENCH_100K").is_some() {
            &[500, 10_000, 100_000]
        } else {
            &[500, 10_000]
        };
        for &vehicles in par_sizes {
            let mut scenario = FleetScenario::build_with(FleetScenarioConfig {
                vehicles,
                shards: 8,
                ..FleetScenarioConfig::default()
            })
            .expect("sharded fleet builds");
            scenario
                .install_telemetry(50)
                .expect("install waves complete");
            group.bench_with_input(BenchmarkId::new("par_tick", vehicles), &vehicles, |b, _| {
                b.iter(|| scenario.fleet.step().expect("fleet step"));
            });
        }
    }
    // Lossy hub: the same tick over a transport losing 5 % of all
    // federation messages, so the reliability plane's retransmission
    // overhead (dedup window, deadline heap, requeues) shows up in the perf
    // trajectory next to the lossless datapoints.
    for vehicles in [50usize, 500] {
        use dynar_fes::transport::TransportConfig;
        let mut scenario = FleetScenario::build_with(FleetScenarioConfig {
            vehicles,
            transport: TransportConfig {
                latency_ticks: 1,
                loss_probability: 0.05,
                seed: 0xBE7C,
            },
            ..FleetScenarioConfig::default()
        })
        .expect("lossy fleet builds");
        let user = scenario.user.clone();
        let app = dynar_foundation::ids::AppId::new(dynar_sim::scenario::fleet::APP_TELEMETRY);
        let targets = scenario.fleet.vehicle_ids().to_vec();
        scenario
            .fleet
            .deploy_wave(&user, &app, &targets)
            .expect("deploy wave");
        let horizon = scenario.fleet.server.retry_horizon_ticks() + 120;
        scenario
            .fleet
            .run(horizon)
            .expect("lossy install converges");
        group.bench_with_input(
            BenchmarkId::new("lossy_tick", vehicles),
            &vehicles,
            |b, _| {
                b.iter(|| scenario.fleet.step().expect("fleet step"));
            },
        );
    }
    // End to end: build a 50-vehicle fleet, run the staged install wave and
    // drive 1000 ticks of mixed management + signal-chain load.
    group.bench_function("install_wave_plus_1000_ticks/50", |b| {
        b.iter(|| {
            let mut scenario = FleetScenario::build(50).expect("fleet builds");
            scenario
                .install_telemetry(10)
                .expect("install waves complete");
            scenario.fleet.run(1000).expect("fleet run");
            scenario.fleet.stats().ticks
        });
    });
    group.finish();
}

/// E-VM — the two execution planes side by side on the dominant plug-in
/// workload shapes: arithmetic accumulation, port forwarding and
/// pending-guard branching.  One iteration is one full scheduling slot (the
/// default 10 000-instruction budget), so the numbers are pure dispatch +
/// execute cost.  scripts/bench_compare.sh pins the interpreter datapoints
/// as the regression baseline and reports `BENCH_VM_SPEEDUP` for the
/// compiled plane next to them; scripts/bench_snapshot.sh refuses snapshots
/// that miss the compiled datapoint.
fn bench_vm(c: &mut Criterion) {
    use dynar_vm::{Budget, CompiledVm, PortHost, Vm};

    /// All host calls answer without allocating, so the loop body stays on
    /// the VM itself.
    struct BenchHost {
        writes: u64,
    }
    impl PortHost for BenchHost {
        fn read_port(&mut self, _slot: u32) -> dynar_foundation::error::Result<Value> {
            Ok(Value::I64(1))
        }
        fn take_port(&mut self, _slot: u32) -> dynar_foundation::error::Result<Value> {
            Ok(Value::I64(1))
        }
        fn write_port(&mut self, _slot: u32, _value: Value) -> dynar_foundation::error::Result<()> {
            self.writes += 1;
            Ok(())
        }
        fn pending(&mut self, _slot: u32) -> dynar_foundation::error::Result<usize> {
            Ok(1)
        }
        fn log(&mut self, _message: &str) {}
    }

    let workloads = [
        (
            "arith",
            r#"
                push_int 0
                store 0
            loop:
                load 0
                push_int 1
                add
                store 0
                jump loop
            "#,
        ),
        (
            "ports",
            r#"
            loop:
                take_port 0
                store 0
                load 0
                write_port 1
                jump loop
            "#,
        ),
        (
            "branch",
            r#"
            loop:
                port_pending 0
                push_int 0
                gt
                jump_if_false idle
                take_port 0
                pop
                jump loop
            idle:
                jump loop
            "#,
        ),
    ];

    let mut group = c.benchmark_group("bench_vm");
    for (name, source) in workloads {
        let program = assemble(name, source).expect("workload assembles");
        let mut host = BenchHost { writes: 0 };

        let mut interp = Vm::new(program.clone(), Budget::default());
        group.bench_function(format!("interpreter_{name}"), |b| {
            b.iter(|| interp.run_slot(&mut host).expect("interpreter slot"));
        });

        let mut compiled =
            CompiledVm::compile(program, Budget::default()).expect("workload compiles");
        group.bench_function(format!("compiled_{name}"), |b| {
            b.iter(|| compiled.run_slot(&mut host).expect("compiled slot"));
        });
        // A compiled datapoint without live superinstructions measures the
        // wrong thing — fail the run rather than record it.
        assert!(
            compiled.fusion_counters().total() > 0,
            "superinstructions must fire in the {name} workload"
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    fig3_signal_chain(c);
    e1_deployment(c);
    e2_mediation_overhead(c);
    e3_server_scalability(c);
    e6_port_multiplexing(c);
    bench_vm(c);
    bench_fleet_tick(c);
}

criterion_group! {
    name = paper;
    config = quick();
    targets = benches
}
criterion_main!(paper);
