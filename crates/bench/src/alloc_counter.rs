//! A counting global allocator for allocation-regression harnesses.
//!
//! The zero-allocation claims of the federation hot path ("a quiescent fleet
//! tick touches the allocator zero times") are easy to regress silently: one
//! stray `clone()` or `collect()` and the steady state allocates again
//! without any test noticing.  [`CountingAllocator`] makes the claim
//! checkable: install it as the `#[global_allocator]` of a test binary,
//! wrap the code under measurement in [`CountingAllocator::count`], and
//! assert on the returned allocation count.
//!
//! Counting is gated on an explicit enable flag so test-harness bookkeeping
//! (output capture, panic machinery) outside the measured window does not
//! pollute the numbers.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let (allocations, _) = CountingAllocator::count(|| fleet.step());
//! assert_eq!(allocations, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations while enabled.
///
/// Deallocations are intentionally not counted: the regression target is
/// "no fresh heap traffic on the steady-state path", and frees of buffers
/// acquired during warm-up are legitimate.
pub struct CountingAllocator;

impl CountingAllocator {
    /// Starts counting allocations.
    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Stops counting allocations.
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Allocations observed since the last [`CountingAllocator::reset`].
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::SeqCst)
    }

    /// Resets the allocation counter to zero.
    pub fn reset() {
        ALLOCATIONS.store(0, Ordering::SeqCst);
    }

    /// Runs `f` with counting enabled and returns `(allocations, result)`.
    pub fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
        Self::reset();
        Self::enable();
        let result = f();
        Self::disable();
        (Self::allocations(), result)
    }
}

// SAFETY: every method delegates directly to `System`; the wrapper only
// increments an atomic counter and never touches the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
