//! Benchmark support crate.
//!
//! The actual benchmarks live in `benches/paper.rs`; this library holds the
//! helpers they share with the integration tests, most notably the
//! [`alloc_counter::CountingAllocator`] behind the zero-allocation
//! regression harness.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
pub mod alloc_counter;

pub use alloc_counter::CountingAllocator;
