//! Benchmark support crate.
//!
//! The actual benchmarks live in `benches/paper.rs`; this library only
//! re-exports the workload builders they share with the integration tests.

#![forbid(unsafe_code)]
