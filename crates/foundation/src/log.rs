//! A lightweight structured event log.
//!
//! The simulated platform has no console; instead every subsystem records
//! noteworthy events (installations, acks, faults, signal drops) into an
//! [`EventLog`].  Tests and the scenario runner query the log to assert on
//! system-level behaviour, and the bench harness uses it to count events
//! without perturbing the measured code paths.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Tick;

/// Severity of a logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Fine-grained progress information (signal routed, runnable executed).
    Debug,
    /// Normal life-cycle events (plug-in installed, ack received).
    Info,
    /// Something unexpected that the system tolerated (dropped frame).
    Warning,
    /// A failure that aborted an operation (rejected deployment, VM fault).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Error => "ERROR",
        };
        f.write_str(name)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulated time at which the event occurred.
    pub at: Tick,
    /// Severity of the event.
    pub severity: Severity,
    /// The subsystem that produced the event ("pirte", "ecm", "server", ...).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.severity, self.source, self.message
        )
    }
}

/// An append-only, bounded, in-memory event log.
///
/// The log keeps at most `capacity` events; older events are discarded first,
/// mirroring the bounded diagnostic buffers of a real ECU.
///
/// # Example
/// ```
/// use dynar_foundation::log::{EventLog, Severity};
/// use dynar_foundation::time::Tick;
///
/// let mut log = EventLog::with_capacity(16);
/// log.record(Tick::new(3), Severity::Info, "pirte", "plug-in COM installed");
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.count_at_least(Severity::Info), 1);
/// assert!(log.iter().any(|e| e.message.contains("COM")));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    capacity: usize,
    events: Vec<Event>,
    dropped: u64,
}

impl EventLog {
    /// Default number of retained events.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a log with [`EventLog::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a log retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends an event, discarding the oldest one if the log is full.
    pub fn record(
        &mut self,
        at: Tick,
        severity: Severity,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if self.events.len() == self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(Event {
            at,
            severity,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events in chronological order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Counts retained events with severity at least `min`.
    pub fn count_at_least(&self, min: Severity) -> usize {
        self.events.iter().filter(|e| e.severity >= min).count()
    }

    /// Returns the retained events produced by `source`.
    pub fn from_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.source == source)
    }

    /// Removes all retained events (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, capacity: usize) -> EventLog {
        let mut log = EventLog::with_capacity(capacity);
        for i in 0..n {
            log.record(
                Tick::new(i as u64),
                Severity::Info,
                "test",
                format!("event {i}"),
            );
        }
        log
    }

    #[test]
    fn records_in_order() {
        let log = filled(5, 16);
        let times: Vec<u64> = log.iter().map(|e| e.at.as_u64()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let log = filled(10, 4);
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        assert_eq!(log.iter().next().unwrap().message, "event 6");
    }

    #[test]
    fn severity_ordering_supports_filtering() {
        let mut log = EventLog::new();
        log.record(Tick::ZERO, Severity::Debug, "a", "d");
        log.record(Tick::ZERO, Severity::Warning, "a", "w");
        log.record(Tick::ZERO, Severity::Error, "b", "e");
        assert_eq!(log.count_at_least(Severity::Warning), 2);
        assert_eq!(log.count_at_least(Severity::Debug), 3);
        assert_eq!(log.from_source("b").count(), 1);
    }

    #[test]
    fn clear_preserves_drop_counter() {
        let mut log = filled(10, 4);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 6);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut log = EventLog::with_capacity(0);
        log.record(Tick::ZERO, Severity::Info, "a", "x");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn event_display_contains_all_fields() {
        let mut log = EventLog::new();
        log.record(Tick::new(9), Severity::Error, "vm", "stack underflow");
        let rendered = log.iter().next().unwrap().to_string();
        assert!(rendered.contains("t9"));
        assert!(rendered.contains("ERROR"));
        assert!(rendered.contains("vm"));
        assert!(rendered.contains("stack underflow"));
    }
}
