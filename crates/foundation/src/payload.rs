//! Shared, immutable byte payloads for the federation transport path.
//!
//! Every management message used to travel as a `Vec<u8>` that was cloned at
//! each hop: once into the trusted server's retransmission cache, once per
//! retransmission onto the downlink queue, once into the transport hub's
//! in-flight set and once more into the receiving mailbox.  [`Payload`] wraps
//! the encoded bytes in an `Arc<[u8]>` so every one of those copies is a
//! reference-count bump — the buffer itself is allocated exactly once, when
//! the message is encoded.
//!
//! The type is deliberately immutable: a payload that is cached for
//! retransmission **must** be retransmitted byte-identical (same sequence
//! id), and sharing the buffer makes that guarantee structural.
//!
//! # Example
//! ```
//! use dynar_foundation::payload::Payload;
//!
//! let payload = Payload::from(vec![1u8, 2, 3]);
//! let cached = payload.clone(); // refcount bump, no copy
//! assert_eq!(&*cached, &[1, 2, 3]);
//! assert_eq!(payload, cached);
//! ```

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer shared between the trusted
/// server's retransmission cache, the transport hub and the ECM gateway.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Creates a payload by copying `bytes` (the one allocation of the
    /// payload's life; every later hop shares it).
    pub fn copy_from(bytes: &[u8]) -> Self {
        Payload(Arc::from(bytes))
    }

    /// The payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(Arc::from(bytes))
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload::copy_from(bytes)
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(bytes: [u8; N]) -> Self {
        Payload(Arc::from(bytes.as_slice()))
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == **other
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        **self == *other.0
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        *self.0 == *other
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_buffer() {
        let payload = Payload::from(vec![1u8, 2, 3]);
        let clone = payload.clone();
        assert!(Arc::ptr_eq(&payload.0, &clone.0), "no buffer copy");
        assert_eq!(clone.as_slice(), &[1, 2, 3]);
        assert_eq!(clone.len(), 3);
        assert!(!clone.is_empty());
    }

    #[test]
    fn equality_against_vec_and_slice() {
        let payload = Payload::copy_from(&[9, 8]);
        assert_eq!(payload, vec![9u8, 8]);
        assert_eq!(vec![9u8, 8], payload);
        assert_eq!(payload, *[9u8, 8].as_slice());
        assert_ne!(payload, vec![9u8]);
        assert!(Payload::from(Vec::new()).is_empty());
    }

    #[test]
    fn debug_is_compact() {
        assert_eq!(
            format!("{:?}", Payload::from(vec![0u8; 40])),
            "Payload(40 bytes)"
        );
    }
}
