//! Foundation types shared by every crate of the dynamic AUTOSAR reproduction.
//!
//! The crate is intentionally small and dependency-light: it defines the
//! strongly typed identifiers used across ECUs, software components, ports and
//! plug-ins ([`ids`]), the dynamic signal value model carried over ports
//! ([`value`]), the deterministic simulation clock ([`time`]), the shared
//! error type ([`error`]) and a lightweight structured event log ([`log`]).
//!
//! # Example
//!
//! ```
//! use dynar_foundation::ids::{EcuId, SwcId};
//! use dynar_foundation::value::Value;
//! use dynar_foundation::time::Tick;
//!
//! let ecu = EcuId::new(1);
//! let swc = SwcId::new(ecu, 0);
//! let speed = Value::F64(13.5);
//! assert_eq!(swc.ecu(), ecu);
//! assert!(speed.as_f64().is_some());
//! assert_eq!(Tick::ZERO.advance(10).as_u64(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffers;
pub mod codec;
pub mod error;
pub mod ids;
pub mod intern;
pub mod journal;
pub mod log;
pub mod payload;
pub mod pool;
pub mod time;
pub mod value;

pub use error::{DynarError, Result};
pub use ids::{
    AppId, EcuId, PluginId, PluginPortId, PortId, SwcId, UserId, VehicleId, VirtualPortId,
};
pub use intern::{Interner, Slot, SlotSet};
pub use payload::Payload;
pub use time::Tick;
pub use value::Value;
