//! A small fixed-worker thread pool for shard-parallel fan-out.
//!
//! The pool exists so the simulation's hot loop can spread per-shard work
//! across cores without pulling a work-stealing runtime into the workspace:
//! tasks are submitted as a batch ([`ThreadPool::run`]), executed on a fixed
//! set of workers, and their results returned **in task order** — the caller
//! never observes scheduling nondeterminism.
//!
//! A pool with zero or one worker (or a single-task batch) executes inline on
//! the caller's thread: the degenerate configuration costs no queueing, no
//! boxed-result channel round trip and no cross-thread synchronisation, so a
//! `shards = 1` deployment keeps its single-threaded performance profile.
//!
//! # Example
//!
//! ```
//! use dynar_foundation::pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
//!     .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
//!     .collect();
//! assert_eq!(pool.run(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads executing batches of boxed tasks.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped; each [`ThreadPool::run`] batch is queued onto the shared channel
/// and drained by whichever workers are free.  Results always come back in
/// task order.
#[derive(Debug)]
pub struct ThreadPool {
    /// `None` for an inline pool (zero or one worker).
    inner: Option<Inner>,
    workers: usize,
}

#[derive(Debug)]
struct Inner {
    sender: mpsc::Sender<Job>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `workers` threads.  `workers <= 1` builds an
    /// inline pool that executes every batch on the caller's thread.
    pub fn new(workers: usize) -> Self {
        if workers <= 1 {
            return ThreadPool {
                inner: None,
                workers: workers.max(1),
            };
        }
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("dynar-pool-{index}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            // A panicking task must not take the worker with
                            // it: the batch that submitted it surfaces the
                            // panic (see `run`), later batches still have a
                            // full complement of workers.
                            Ok(job) => {
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            inner: Some(Inner { sender, handles }),
            workers,
        }
    }

    /// Creates a pool sized to the machine: one worker per available core.
    pub fn with_default_workers() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(workers)
    }

    /// The number of workers (1 for an inline pool).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes a batch of tasks and returns their results in task order.
    ///
    /// Inline pools — and single-task batches, where parallelism buys
    /// nothing — run on the caller's thread.  Otherwise every task is queued
    /// and the call blocks until all results arrived.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic in the caller) if any task panicked.
    pub fn run<T: Send + 'static>(&self, tasks: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
        let Some(inner) = &self.inner else {
            return tasks.into_iter().map(|task| task()).collect();
        };
        if tasks.len() <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let count = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for (index, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            let job: Job = Box::new(move || {
                let result = task();
                // The receiver only disappears if the caller panicked.
                let _ = tx.send((index, result));
            });
            inner.sender.send(job).expect("pool workers alive");
        }
        drop(tx);
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (index, value) in rx {
            results[index] = Some(value);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("pool task panicked"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            // Closing the channel ends every worker's recv loop.
            drop(inner.sender);
            for handle in inner.handles {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_pool_runs_in_order() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.workers(), 1);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|i| Box::new(move || i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(pool.run(tasks), vec![0, 1, 2, 3]);
    }

    #[test]
    fn threaded_pool_preserves_task_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..32u64)
            .map(|i| {
                Box::new(move || {
                    // Skew the finish order: higher indices finish first.
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) * 10));
                    i * 3
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let results = pool.run(tasks);
        assert_eq!(results, (0..32u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_consecutive_batches() {
        let pool = ThreadPool::new(2);
        for round in 0..8u64 {
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4u64)
                .map(|i| Box::new(move || round * 100 + i) as Box<dyn FnOnce() -> u64 + Send>)
                .collect();
            assert_eq!(
                pool.run(tasks),
                (0..4u64).map(|i| round * 100 + i).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        assert_eq!(pool.run(tasks).len(), 0);
    }
}
