//! A compact, self-describing binary codec for [`Value`]s.
//!
//! The codec is the common wire format of the reproduction: the RTE uses it
//! when a signal leaves its ECU, the plug-in virtual machine uses it to store
//! constants inside plug-in binaries, and the ECM/trusted-server protocol uses
//! it inside installation packages.

use crate::error::{DynarError, Result};
use crate::value::Value;

const TAG_VOID: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_BYTES: u8 = 4;
const TAG_TEXT: u8 = 5;
const TAG_LIST: u8 = 6;

/// Encodes a [`Value`] into a self-describing byte sequence.
///
/// # Example
/// ```
/// use dynar_foundation::codec::{decode_value, encode_value};
/// use dynar_foundation::value::Value;
///
/// # fn main() -> Result<(), dynar_foundation::error::DynarError> {
/// let original = Value::List(vec![Value::I64(-3), Value::Text("speed".into())]);
/// let decoded = decode_value(&encode_value(&original))?;
/// assert_eq!(decoded, original);
/// # Ok(())
/// # }
/// ```
pub fn encode_value(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.payload_size() + 8);
    encode_into(value, &mut out);
    out
}

/// Appends the encoding of `value` to `out`, avoiding an intermediate
/// allocation when composing larger messages.
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Void => out.push(TAG_VOID),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::I64(v) => {
            out.push(TAG_I64);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::F64(v) => {
            out.push(TAG_F64);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Text(t) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(t.len() as u32).to_le_bytes());
            out.extend_from_slice(t.as_bytes());
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_into(item, out);
            }
        }
    }
}

/// Decodes a byte sequence produced by [`encode_value`].
///
/// # Errors
///
/// Returns [`DynarError::ProtocolViolation`] on truncated or malformed input
/// and when trailing bytes follow the encoded value.
pub fn decode_value(bytes: &[u8]) -> Result<Value> {
    let (value, consumed) = decode_prefix(bytes)?;
    if consumed != bytes.len() {
        return Err(DynarError::ProtocolViolation(format!(
            "{} trailing bytes after encoded value",
            bytes.len() - consumed
        )));
    }
    Ok(value)
}

/// Decodes one value from the start of `bytes`, returning it together with
/// the number of bytes consumed.  Useful when several values are
/// concatenated in one message.
///
/// # Errors
///
/// Returns [`DynarError::ProtocolViolation`] on truncated or malformed input.
pub fn decode_prefix(bytes: &[u8]) -> Result<(Value, usize)> {
    let truncated = || DynarError::ProtocolViolation("truncated value encoding".into());
    let tag = *bytes.first().ok_or_else(truncated)?;
    match tag {
        TAG_VOID => Ok((Value::Void, 1)),
        TAG_BOOL => {
            let b = *bytes.get(1).ok_or_else(truncated)?;
            Ok((Value::Bool(b != 0), 2))
        }
        TAG_I64 => {
            let raw: [u8; 8] = bytes
                .get(1..9)
                .ok_or_else(truncated)?
                .try_into()
                .expect("slice length checked");
            Ok((Value::I64(i64::from_le_bytes(raw)), 9))
        }
        TAG_F64 => {
            let raw: [u8; 8] = bytes
                .get(1..9)
                .ok_or_else(truncated)?
                .try_into()
                .expect("slice length checked");
            Ok((Value::F64(f64::from_le_bytes(raw)), 9))
        }
        TAG_BYTES | TAG_TEXT => {
            let raw: [u8; 4] = bytes
                .get(1..5)
                .ok_or_else(truncated)?
                .try_into()
                .expect("slice length checked");
            let len = u32::from_le_bytes(raw) as usize;
            let data = bytes.get(5..5 + len).ok_or_else(truncated)?;
            let value = if tag == TAG_BYTES {
                Value::Bytes(data.to_vec())
            } else {
                Value::Text(String::from_utf8(data.to_vec()).map_err(|_| {
                    DynarError::ProtocolViolation("text value is not valid UTF-8".into())
                })?)
            };
            Ok((value, 5 + len))
        }
        TAG_LIST => {
            let raw: [u8; 4] = bytes
                .get(1..5)
                .ok_or_else(truncated)?
                .try_into()
                .expect("slice length checked");
            let count = u32::from_le_bytes(raw) as usize;
            let mut offset = 5;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let (item, used) = decode_prefix(bytes.get(offset..).ok_or_else(truncated)?)?;
                items.push(item);
                offset += used;
            }
            Ok((Value::List(items), offset))
        }
        other => Err(DynarError::ProtocolViolation(format!(
            "unknown value tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_variant() {
        let values = vec![
            Value::Void,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(i64::MIN),
            Value::I64(i64::MAX),
            Value::F64(3.25),
            Value::Bytes(vec![0, 1, 2, 255]),
            Value::Bytes(Vec::new()),
            Value::Text("WheelsReq".into()),
            Value::Text(String::new()),
            Value::List(Vec::new()),
            Value::List(vec![
                Value::I64(1),
                Value::List(vec![Value::Text("nested".into()), Value::Void]),
            ]),
        ];
        for value in values {
            let encoded = encode_value(&value);
            assert_eq!(decode_value(&encoded).unwrap(), value, "{value:?}");
        }
    }

    #[test]
    fn codec_rejects_malformed_input() {
        assert!(decode_value(&[]).is_err());
        assert!(decode_value(&[99]).is_err(), "unknown tag");
        assert!(decode_value(&[TAG_I64, 1, 2]).is_err(), "truncated i64");
        assert!(decode_value(&[TAG_F64]).is_err(), "truncated f64");
        assert!(
            decode_value(&[TAG_BYTES, 10, 0, 0, 0, 1]).is_err(),
            "length longer than data"
        );
        let mut ok = encode_value(&Value::I64(1));
        ok.push(0);
        assert!(decode_value(&ok).is_err(), "trailing bytes");
        assert!(
            decode_value(&[TAG_TEXT, 2, 0, 0, 0, 0xFF, 0xFE]).is_err(),
            "invalid UTF-8"
        );
    }

    #[test]
    fn decode_prefix_reports_consumed_length() {
        let mut buffer = encode_value(&Value::I64(7));
        let text_start = buffer.len();
        encode_into(&Value::Text("x".into()), &mut buffer);
        let (first, used) = decode_prefix(&buffer).unwrap();
        assert_eq!(first, Value::I64(7));
        assert_eq!(used, text_start);
        let (second, _) = decode_prefix(&buffer[used..]).unwrap();
        assert_eq!(second, Value::Text("x".into()));
    }

    #[test]
    fn nested_lists_round_trip() {
        let mut value = Value::I64(0);
        for depth in 0..16 {
            value = Value::List(vec![value, Value::I64(depth)]);
        }
        assert_eq!(decode_value(&encode_value(&value)).unwrap(), value);
    }
}
