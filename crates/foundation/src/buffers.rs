//! Scratch-buffer helpers for allocation-free per-tick drains.
//!
//! The hot paths drain producer queues into caller-owned buffers every tick.
//! Swapping the two vectors (instead of moving elements or collecting a
//! fresh vector) lets the buffers ping-pong: both keep their capacity, and a
//! steady-state drain never touches the allocator.

/// Drains `src` into `into`: swaps the buffers when `into` is empty (the
/// steady-state, allocation-free path), appends otherwise.
///
/// Callers that reuse `into` across ticks and drain it fully between calls
/// get the ping-pong behaviour automatically.
///
/// # Example
/// ```
/// use dynar_foundation::buffers::drain_swap;
///
/// let mut queue = vec![1, 2, 3];
/// let mut scratch: Vec<i32> = Vec::new();
/// drain_swap(&mut queue, &mut scratch);
/// assert_eq!(scratch, [1, 2, 3]);
/// assert!(queue.is_empty());
/// ```
pub fn drain_swap<T>(src: &mut Vec<T>, into: &mut Vec<T>) {
    if into.is_empty() {
        std::mem::swap(src, into);
    } else {
        into.append(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swaps_into_an_empty_buffer_without_moving_elements() {
        let mut src = vec![1, 2];
        let capacity = src.capacity();
        let mut into: Vec<i32> = Vec::new();
        drain_swap(&mut src, &mut into);
        assert_eq!(into, [1, 2]);
        assert_eq!(into.capacity(), capacity, "the buffer itself moved");
        assert!(src.is_empty());
    }

    #[test]
    fn appends_into_a_non_empty_buffer() {
        let mut src = vec![3, 4];
        let mut into = vec![1, 2];
        drain_swap(&mut src, &mut into);
        assert_eq!(into, [1, 2, 3, 4]);
        assert!(src.is_empty());
    }
}
