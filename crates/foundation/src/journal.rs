//! Length-prefixed, checksummed frames for write-ahead journals.
//!
//! The trusted server's durability plane (see `crates/server`) appends one
//! frame per state transition; this module owns the *storage* layer only —
//! the frame payloads themselves are [`crate::codec`]-encoded
//! [`crate::value::Value`]s whose schema the journal's writer defines.
//!
//! # Frame format
//!
//! ```text
//! [ payload length : u32 LE ][ FNV-1a checksum : u32 LE ][ payload bytes ]
//! ```
//!
//! The checksum covers the payload only.  A truncated tail (the classic
//! torn-write crash artefact) or a corrupted payload is reported as a typed
//! [`DynarError::ProtocolViolation`], never a panic: journals are read back
//! on the recovery path, where the input is untrusted by definition.

use crate::error::{DynarError, Result};

/// The fixed per-frame header size: payload length plus checksum.
pub const FRAME_HEADER_LEN: usize = 8;

/// Largest payload a single frame may carry (a corruption guard: a flipped
/// bit in the length field must not ask the reader for gigabytes).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Computes the 32-bit FNV-1a hash of `bytes` (the per-frame checksum).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in bytes {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Appends one frame carrying `payload` to `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A cursor over a byte buffer of consecutive frames.
///
/// ```
/// use dynar_foundation::journal::{append_frame, FrameReader};
///
/// # fn main() -> Result<(), dynar_foundation::error::DynarError> {
/// let mut journal = Vec::new();
/// append_frame(&mut journal, b"first");
/// append_frame(&mut journal, b"second");
/// let mut reader = FrameReader::new(&journal);
/// assert_eq!(reader.next_frame()?, Some(&b"first"[..]));
/// assert_eq!(reader.next_frame()?, Some(&b"second"[..]));
/// assert_eq!(reader.next_frame()?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> FrameReader<'a> {
    /// Creates a reader positioned at the first frame of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameReader { bytes, offset: 0 }
    }

    /// The byte offset of the next unread frame.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Reads the next frame's payload, `None` at a clean end of input.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] on a truncated header or
    /// payload, an implausible length field, or a checksum mismatch.
    pub fn next_frame(&mut self) -> Result<Option<&'a [u8]>> {
        let remaining = &self.bytes[self.offset..];
        if remaining.is_empty() {
            return Ok(None);
        }
        if remaining.len() < FRAME_HEADER_LEN {
            return Err(DynarError::ProtocolViolation(format!(
                "truncated journal frame header at offset {}: {} byte(s) left, {} needed",
                self.offset,
                remaining.len(),
                FRAME_HEADER_LEN
            )));
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes"));
        let checksum = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(DynarError::ProtocolViolation(format!(
                "journal frame at offset {} declares an implausible length {len}",
                self.offset
            )));
        }
        let len = len as usize;
        let body = &remaining[FRAME_HEADER_LEN..];
        if body.len() < len {
            return Err(DynarError::ProtocolViolation(format!(
                "truncated journal frame at offset {}: payload needs {len} byte(s), {} left",
                self.offset,
                body.len()
            )));
        }
        let payload = &body[..len];
        let actual = fnv1a(payload);
        if actual != checksum {
            return Err(DynarError::ProtocolViolation(format!(
                "journal frame at offset {} failed its checksum \
                 (stored {checksum:#010x}, computed {actual:#010x})",
                self.offset
            )));
        }
        self.offset += FRAME_HEADER_LEN + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_order() {
        let mut journal = Vec::new();
        append_frame(&mut journal, b"");
        append_frame(&mut journal, b"alpha");
        append_frame(&mut journal, &[0xff; 300]);
        let mut reader = FrameReader::new(&journal);
        assert_eq!(reader.next_frame().unwrap(), Some(&b""[..]));
        assert_eq!(reader.next_frame().unwrap(), Some(&b"alpha"[..]));
        assert_eq!(reader.next_frame().unwrap(), Some(&[0xff; 300][..]));
        assert_eq!(reader.next_frame().unwrap(), None);
    }

    #[test]
    fn truncated_header_is_a_typed_error() {
        let mut journal = Vec::new();
        append_frame(&mut journal, b"alpha");
        let mut reader = FrameReader::new(&journal[..4]);
        assert!(matches!(
            reader.next_frame(),
            Err(DynarError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let mut journal = Vec::new();
        append_frame(&mut journal, b"alpha");
        let mut reader = FrameReader::new(&journal[..journal.len() - 2]);
        assert!(matches!(
            reader.next_frame(),
            Err(DynarError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut journal = Vec::new();
        append_frame(&mut journal, b"alpha");
        let last = journal.len() - 1;
        journal[last] ^= 0x01;
        let mut reader = FrameReader::new(&journal);
        assert!(matches!(
            reader.next_frame(),
            Err(DynarError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut journal = Vec::new();
        journal.extend_from_slice(&u32::MAX.to_le_bytes());
        journal.extend_from_slice(&0u32.to_le_bytes());
        journal.extend_from_slice(&[0u8; 16]);
        let mut reader = FrameReader::new(&journal);
        assert!(matches!(
            reader.next_frame(),
            Err(DynarError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn reading_continues_after_a_clean_prefix() {
        let mut journal = Vec::new();
        append_frame(&mut journal, b"ok");
        let prefix_end = journal.len();
        append_frame(&mut journal, b"torn");
        let torn = &journal[..journal.len() - 1];
        let mut reader = FrameReader::new(torn);
        assert_eq!(reader.next_frame().unwrap(), Some(&b"ok"[..]));
        assert_eq!(reader.offset(), prefix_end);
        assert!(reader.next_frame().is_err());
    }
}
