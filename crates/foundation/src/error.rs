//! The shared error type of the reproduction.
//!
//! Every crate in the workspace reports failures through [`DynarError`] so
//! that errors can flow across subsystem boundaries (server → ECM → PIRTE →
//! RTE) without conversion boilerplate, while still carrying enough structure
//! for the trusted server to present meaningful failure reasons to the user
//! (paper §3.2.2: "If the compatibility check fails, the server presents the
//! reason for the failure to the user").

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DynarError>;

/// Errors produced anywhere in the dynamic AUTOSAR stack.
///
/// # Example
/// ```
/// use dynar_foundation::error::DynarError;
///
/// let err = DynarError::not_found("plugin", "COM");
/// assert_eq!(err.to_string(), "plugin not found: COM");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DynarError {
    /// A value had a different runtime type than the consumer expected.
    TypeMismatch {
        /// The type the consumer expected.
        expected: &'static str,
        /// The type that was actually present.
        found: &'static str,
    },
    /// An entity (ECU, SW-C, port, plug-in, app, vehicle, user, ...) was not found.
    NotFound {
        /// The kind of entity that was looked up.
        kind: &'static str,
        /// The identifier that failed to resolve.
        id: String,
    },
    /// An entity with the same identifier already exists.
    Duplicate {
        /// The kind of entity that collided.
        kind: &'static str,
        /// The identifier that collided.
        id: String,
    },
    /// A statically declared configuration is internally inconsistent.
    InvalidConfiguration(String),
    /// A port was used against its declared direction (read on a provided
    /// port, write on a required port, ...).
    PortDirection {
        /// Display form of the offending port.
        port: String,
        /// The direction the operation required.
        expected: &'static str,
    },
    /// A signal was routed to a port that has no connection.
    NotConnected(String),
    /// The trusted server's compatibility check rejected a deployment.
    Incompatible(String),
    /// A plug-in requires another plug-in that is not installed.
    MissingDependency {
        /// The plug-in being deployed.
        plugin: String,
        /// The missing prerequisite.
        requires: String,
    },
    /// A plug-in conflicts with an already installed plug-in.
    PluginConflict {
        /// The plug-in being deployed.
        plugin: String,
        /// The installed plug-in it conflicts with.
        conflicts_with: String,
    },
    /// Two active rollout campaigns target the same app on overlapping
    /// vehicles; accepting the second would make the desired manifests
    /// last-writer-wins.
    CampaignConflict {
        /// The campaign being created.
        campaign: String,
        /// The already-active campaign it collides with.
        conflicts_with: String,
        /// The contested application.
        app: String,
    },
    /// A plug-in cannot be uninstalled because others depend on it.
    DependentsExist {
        /// The plug-in whose removal was requested.
        plugin: String,
        /// Installed plug-ins that depend on it.
        dependents: Vec<String>,
    },
    /// A plug-in life-cycle transition was requested from an incompatible state.
    LifecycleViolation {
        /// The plug-in concerned.
        plugin: String,
        /// The state it was in.
        from: String,
        /// The transition that was requested.
        requested: String,
    },
    /// A plug-in exhausted one of its best-effort resource budgets.
    BudgetExhausted {
        /// The plug-in concerned.
        plugin: String,
        /// Which budget ran out ("instructions", "memory", "mailbox", ...).
        what: &'static str,
    },
    /// The plug-in virtual machine hit a fault (bad opcode, stack error, ...).
    VmFault(String),
    /// A simulated transport (server link, phone link) is closed or unknown.
    TransportClosed(String),
    /// A message did not follow the ECM/trusted-server wire protocol.
    ProtocolViolation(String),
    /// A management operation exhausted its retransmission budget without an
    /// acknowledgement from the vehicle.
    RetryExhausted {
        /// The operation that was abandoned (e.g. `install of OP on ECU2`).
        operation: String,
        /// How many delivery attempts were made.
        attempts: u32,
    },
    /// The vehicle's transport endpoint is gone for good: outstanding
    /// operations are failed immediately instead of burning the retry budget
    /// against a dead link (distinct from [`DynarError::RetryExhausted`],
    /// which means the link *might* still be there).
    VehicleUnreachable {
        /// The vehicle whose endpoint disappeared.
        vehicle: String,
    },
    /// An operating-system I/O failure (journal file sink, sockets), carrying
    /// the display form of the underlying OS error.
    Io(String),
}

impl DynarError {
    /// Shorthand constructor for [`DynarError::NotFound`].
    pub fn not_found(kind: &'static str, id: impl fmt::Display) -> Self {
        DynarError::NotFound {
            kind,
            id: id.to_string(),
        }
    }

    /// Shorthand constructor for [`DynarError::Duplicate`].
    pub fn duplicate(kind: &'static str, id: impl fmt::Display) -> Self {
        DynarError::Duplicate {
            kind,
            id: id.to_string(),
        }
    }

    /// Shorthand constructor for [`DynarError::InvalidConfiguration`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        DynarError::InvalidConfiguration(reason.into())
    }

    /// Returns `true` if the error represents a deployment rejection that the
    /// trusted server should surface to the user rather than a programming or
    /// platform fault.
    pub fn is_deployment_rejection(&self) -> bool {
        matches!(
            self,
            DynarError::Incompatible(_)
                | DynarError::MissingDependency { .. }
                | DynarError::PluginConflict { .. }
                | DynarError::DependentsExist { .. }
        )
    }
}

impl fmt::Display for DynarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynarError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DynarError::NotFound { kind, id } => write!(f, "{kind} not found: {id}"),
            DynarError::Duplicate { kind, id } => write!(f, "duplicate {kind}: {id}"),
            DynarError::InvalidConfiguration(reason) => {
                write!(f, "invalid configuration: {reason}")
            }
            DynarError::PortDirection { port, expected } => {
                write!(
                    f,
                    "port {port} used against its direction, expected {expected}"
                )
            }
            DynarError::NotConnected(what) => write!(f, "no connection for {what}"),
            DynarError::Incompatible(reason) => write!(f, "incompatible deployment: {reason}"),
            DynarError::MissingDependency { plugin, requires } => {
                write!(
                    f,
                    "plug-in {plugin} requires {requires} which is not installed"
                )
            }
            DynarError::PluginConflict {
                plugin,
                conflicts_with,
            } => write!(
                f,
                "plug-in {plugin} conflicts with installed {conflicts_with}"
            ),
            DynarError::CampaignConflict {
                campaign,
                conflicts_with,
                app,
            } => write!(
                f,
                "campaign {campaign} conflicts with active campaign {conflicts_with} over app {app}"
            ),
            DynarError::DependentsExist { plugin, dependents } => write!(
                f,
                "plug-in {plugin} cannot be removed, depended on by {}",
                dependents.join(", ")
            ),
            DynarError::LifecycleViolation {
                plugin,
                from,
                requested,
            } => write!(
                f,
                "plug-in {plugin} cannot perform {requested} from state {from}"
            ),
            DynarError::BudgetExhausted { plugin, what } => {
                write!(f, "plug-in {plugin} exhausted its {what} budget")
            }
            DynarError::VmFault(reason) => write!(f, "virtual machine fault: {reason}"),
            DynarError::TransportClosed(which) => write!(f, "transport closed: {which}"),
            DynarError::ProtocolViolation(reason) => write!(f, "protocol violation: {reason}"),
            DynarError::RetryExhausted {
                operation,
                attempts,
            } => write!(
                f,
                "retry budget exhausted after {attempts} attempts: {operation}"
            ),
            DynarError::VehicleUnreachable { vehicle } => {
                write!(f, "vehicle unreachable: {vehicle}")
            }
            DynarError::Io(reason) => write!(f, "i/o failure: {reason}"),
        }
    }
}

impl From<std::io::Error> for DynarError {
    fn from(err: std::io::Error) -> Self {
        DynarError::Io(err.to_string())
    }
}

impl Error for DynarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<DynarError> = vec![
            DynarError::TypeMismatch {
                expected: "i64",
                found: "text",
            },
            DynarError::not_found("plugin", "OP"),
            DynarError::duplicate("app", "remote-control"),
            DynarError::invalid_config("no ECM declared"),
            DynarError::PortDirection {
                port: "ECU1/SWC0:S2".into(),
                expected: "provided",
            },
            DynarError::NotConnected("P3".into()),
            DynarError::Incompatible("missing virtual port WheelsReq".into()),
            DynarError::MissingDependency {
                plugin: "OP".into(),
                requires: "COM".into(),
            },
            DynarError::PluginConflict {
                plugin: "ECO".into(),
                conflicts_with: "SPORT".into(),
            },
            DynarError::CampaignConflict {
                campaign: "rollout-2".into(),
                conflicts_with: "rollout-1".into(),
                app: "telemetry-v2".into(),
            },
            DynarError::DependentsExist {
                plugin: "COM".into(),
                dependents: vec!["OP".into()],
            },
            DynarError::LifecycleViolation {
                plugin: "COM".into(),
                from: "Stopped".into(),
                requested: "suspend".into(),
            },
            DynarError::BudgetExhausted {
                plugin: "COM".into(),
                what: "instructions",
            },
            DynarError::VmFault("stack underflow".into()),
            DynarError::TransportClosed("phone".into()),
            DynarError::ProtocolViolation("unexpected ack".into()),
            DynarError::RetryExhausted {
                operation: "install of OP on ECU2".into(),
                attempts: 8,
            },
            DynarError::VehicleUnreachable {
                vehicle: "VIN-1".into(),
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn deployment_rejections_are_classified() {
        assert!(DynarError::Incompatible("x".into()).is_deployment_rejection());
        assert!(DynarError::MissingDependency {
            plugin: "a".into(),
            requires: "b".into()
        }
        .is_deployment_rejection());
        assert!(!DynarError::VmFault("x".into()).is_deployment_rejection());
        assert!(!DynarError::not_found("port", "P9").is_deployment_rejection());
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<DynarError>();
    }

    #[test]
    fn clone_preserves_structure() {
        let err = DynarError::DependentsExist {
            plugin: "COM".into(),
            dependents: vec!["OP".into(), "LOG".into()],
        };
        assert_eq!(err, err.clone());
    }
}
