//! The deterministic simulation clock.
//!
//! Everything in this reproduction — the OSEK-like kernel, the bus, the RTE,
//! the ECM protocol and the trusted-server pusher — advances on an explicit
//! [`Tick`] counter instead of wall-clock time.  One tick corresponds to one
//! basic scheduling quantum of the simulated platform (think 1 ms on the
//! Raspberry Pi test platform of the paper); the exact wall-clock meaning is
//! irrelevant because only relative comparisons are ever reported.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in scheduling quanta since start-up.
///
/// # Example
/// ```
/// use dynar_foundation::time::Tick;
///
/// let t0 = Tick::ZERO;
/// let t1 = t0.advance(5);
/// assert_eq!(t1 - t0, 5);
/// assert!(t1.is_after(t0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(u64);

impl Tick {
    /// The start of simulated time.
    pub const ZERO: Tick = Tick(0);

    /// Creates a tick from a raw quantum count.
    pub fn new(ticks: u64) -> Self {
        Tick(ticks)
    }

    /// Returns the raw quantum count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the tick `delta` quanta later.
    #[must_use]
    pub fn advance(self, delta: u64) -> Tick {
        Tick(self.0.saturating_add(delta))
    }

    /// Returns `true` if `self` is strictly later than `other`.
    pub fn is_after(self, other: Tick) -> bool {
        self.0 > other.0
    }

    /// The number of quanta elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn elapsed_since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;

    fn add(self, rhs: u64) -> Tick {
        self.advance(rhs)
    }
}

impl AddAssign<u64> for Tick {
    fn add_assign(&mut self, rhs: u64) {
        *self = self.advance(rhs);
    }
}

impl Sub<Tick> for Tick {
    type Output = u64;

    fn sub(self, rhs: Tick) -> u64 {
        self.elapsed_since(rhs)
    }
}

impl From<u64> for Tick {
    fn from(ticks: u64) -> Self {
        Tick::new(ticks)
    }
}

/// A monotonically increasing clock handing out [`Tick`] values.
///
/// # Example
/// ```
/// use dynar_foundation::time::Clock;
///
/// let mut clock = Clock::new();
/// assert_eq!(clock.now().as_u64(), 0);
/// clock.step();
/// clock.step_by(4);
/// assert_eq!(clock.now().as_u64(), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clock {
    now: Tick,
}

impl Clock {
    /// Creates a clock positioned at [`Tick::ZERO`].
    pub fn new() -> Self {
        Clock { now: Tick::ZERO }
    }

    /// The current simulated time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advances the clock by one quantum and returns the new time.
    pub fn step(&mut self) -> Tick {
        self.step_by(1)
    }

    /// Advances the clock by `delta` quanta and returns the new time.
    pub fn step_by(&mut self, delta: u64) -> Tick {
        self.now = self.now.advance(delta);
        self.now
    }
}

/// A wall-clock source of [`Tick`] values, for the actor runtime and other
/// real-time frontends.
///
/// The deterministic planes never touch this: everything below the
/// federation keeps advancing on explicit ticks.  A `WallClock` sits at the
/// *boundary* and maps elapsed real time onto the same tick axis by dividing
/// it into fixed quanta, so tick-denominated protocol state (retry budgets,
/// announce periods, partition heal times) keeps its meaning when driven by
/// real threads instead of a simulated loop.
///
/// # Example
/// ```
/// use std::time::Duration;
/// use dynar_foundation::time::WallClock;
///
/// let clock = WallClock::new(Duration::from_millis(1));
/// let t0 = clock.now();
/// assert!(clock.now() >= t0, "wall-clock ticks are monotonic");
/// assert_eq!(clock.until_tick(t0), Duration::ZERO, "the past is due now");
/// ```
#[derive(Debug, Clone)]
pub struct WallClock {
    start: std::time::Instant,
    quantum: std::time::Duration,
}

impl WallClock {
    /// Creates a clock where one [`Tick`] spans `quantum` of real time,
    /// starting at [`Tick::ZERO`] now.
    ///
    /// # Panics
    ///
    /// Panics on a zero quantum — it would map every instant to tick
    /// infinity.
    pub fn new(quantum: std::time::Duration) -> Self {
        assert!(!quantum.is_zero(), "wall-clock quantum must be non-zero");
        WallClock {
            start: std::time::Instant::now(),
            quantum,
        }
    }

    /// The real-time span of one tick.
    pub fn quantum(&self) -> std::time::Duration {
        self.quantum
    }

    /// The current wall-clock time, in ticks since the clock was created.
    pub fn now(&self) -> Tick {
        let elapsed = self.start.elapsed();
        Tick::new((elapsed.as_nanos() / self.quantum.as_nanos().max(1)) as u64)
    }

    /// How long to sleep until `tick` is reached ([`Duration::ZERO`] if it
    /// already passed).
    ///
    /// [`Duration::ZERO`]: std::time::Duration::ZERO
    pub fn until_tick(&self, tick: Tick) -> std::time::Duration {
        let due = self
            .quantum
            .saturating_mul(u32::try_from(tick.as_u64()).unwrap_or(u32::MAX));
        due.saturating_sub(self.start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic() {
        let t = Tick::new(10);
        assert_eq!((t + 5).as_u64(), 15);
        assert_eq!(t - Tick::new(4), 6);
        assert_eq!(Tick::new(4) - t, 0, "subtraction saturates");
    }

    #[test]
    fn advance_saturates_at_max() {
        let t = Tick::new(u64::MAX);
        assert_eq!(t.advance(10), t);
    }

    #[test]
    fn ordering_and_is_after() {
        assert!(Tick::new(2).is_after(Tick::new(1)));
        assert!(!Tick::new(1).is_after(Tick::new(1)));
        assert!(Tick::new(1) < Tick::new(2));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut clock = Clock::new();
        let mut last = clock.now();
        for _ in 0..100 {
            let next = clock.step();
            assert!(next.is_after(last));
            last = next;
        }
    }

    #[test]
    fn add_assign_matches_step_by() {
        let mut t = Tick::ZERO;
        t += 7;
        let mut clock = Clock::new();
        clock.step_by(7);
        assert_eq!(t, clock.now());
    }

    #[test]
    fn display_formats_with_prefix() {
        assert_eq!(Tick::new(42).to_string(), "t42");
    }

    #[test]
    fn wall_clock_advances_and_schedules() {
        let clock = WallClock::new(std::time::Duration::from_micros(100));
        let t0 = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = clock.now();
        assert!(t1.is_after(t0), "real time maps onto increasing ticks");
        assert_eq!(clock.until_tick(t0), std::time::Duration::ZERO);
        let far = t1.advance(10_000);
        let wait = clock.until_tick(far);
        assert!(wait > std::time::Duration::ZERO);
        assert!(wait <= std::time::Duration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn wall_clock_rejects_zero_quantum() {
        let _ = WallClock::new(std::time::Duration::ZERO);
    }
}
