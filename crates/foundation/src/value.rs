//! Dynamic signal values exchanged over ports.
//!
//! AUTOSAR ports carry statically typed signals; plug-in ports, in contrast,
//! carry whatever the plug-in developer shipped.  The PIRTE's virtual ports
//! translate between the two worlds (paper §3.1.3), so the common currency of
//! this reproduction is a small dynamic [`Value`] type that both the RTE
//! signal model and the plug-in virtual machine understand.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::DynarError;

/// A dynamically typed value carried over SW-C ports, virtual ports and
/// plug-in ports.
///
/// # Example
/// ```
/// use dynar_foundation::value::Value;
///
/// let speed = Value::F64(13.5);
/// assert_eq!(speed.kind(), "f64");
/// assert_eq!(speed.as_f64(), Some(13.5));
/// assert!(Value::from(true).as_bool().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// The absence of a value (an un-written port reads as `Void`).
    #[default]
    Void,
    /// A boolean flag.
    Bool(bool),
    /// A signed integer, the natural type for VM registers and discrete signals.
    I64(i64),
    /// A floating-point quantity such as a speed or wheel angle.
    F64(f64),
    /// An opaque byte payload (e.g. a serialized installation package).
    Bytes(Vec<u8>),
    /// A human-readable text payload (e.g. an external message id).
    Text(String),
    /// An ordered collection of values (e.g. a multiplexed record).
    List(Vec<Value>),
}

impl Value {
    /// A short, stable name for the value's variant, useful in diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Bytes(_) => "bytes",
            Value::Text(_) => "text",
            Value::List(_) => "list",
        }
    }

    /// Returns `true` if the value is [`Value::Void`].
    pub fn is_void(&self) -> bool {
        matches!(self, Value::Void)
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, widening from `Bool` where unambiguous.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Returns the floating-point payload, widening from `I64` where lossless
    /// enough for control signals.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the byte payload, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the text payload, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Converts the value to an `i64`, reporting a typed error on mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::TypeMismatch`] when the value has no integer
    /// representation.
    pub fn expect_i64(&self) -> Result<i64, DynarError> {
        self.as_i64().ok_or_else(|| DynarError::TypeMismatch {
            expected: "i64",
            found: self.kind(),
        })
    }

    /// Converts the value to an `f64`, reporting a typed error on mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::TypeMismatch`] when the value has no float
    /// representation.
    pub fn expect_f64(&self) -> Result<f64, DynarError> {
        self.as_f64().ok_or_else(|| DynarError::TypeMismatch {
            expected: "f64",
            found: self.kind(),
        })
    }

    /// An approximate payload size in bytes, used by the bus and bench
    /// workload models to account for transport cost.
    pub fn payload_size(&self) -> usize {
        match self {
            Value::Void => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::F64(_) => 8,
            Value::Bytes(b) => b.len(),
            Value::Text(t) => t.len(),
            Value::List(l) => l.iter().map(Value::payload_size).sum::<usize>() + l.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Void => write!(f, "void"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Text(t) => write!(f, "{t:?}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_void() {
        assert!(Value::default().is_void());
    }

    #[test]
    fn conversions_preserve_payload() {
        assert_eq!(Value::from(5i64).as_i64(), Some(5));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::from(true).as_bool(), Some(true));
    }

    #[test]
    fn widening_conversions() {
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert_eq!(Value::I64(4).as_f64(), Some(4.0));
        assert_eq!(Value::Text("x".into()).as_i64(), None);
    }

    #[test]
    fn expect_reports_type_mismatch() {
        let err = Value::Text("oops".into()).expect_i64().unwrap_err();
        match err {
            DynarError::TypeMismatch { expected, found } => {
                assert_eq!(expected, "i64");
                assert_eq!(found, "text");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn payload_size_accounts_for_nesting() {
        let v = Value::List(vec![Value::I64(1), Value::Bytes(vec![0; 10])]);
        assert_eq!(v.payload_size(), 8 + 10 + 2);
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Void,
            Value::Bool(false),
            Value::I64(0),
            Value::F64(0.0),
            Value::Bytes(vec![]),
            Value::Text(String::new()),
            Value::List(vec![Value::I64(1), Value::I64(2)]),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Value::Void.kind(), "void");
        assert_eq!(Value::List(vec![]).kind(), "list");
    }
}
