//! Strongly typed identifiers.
//!
//! The paper's dynamic component model juggles several id spaces at once:
//! ECUs, software components (SW-Cs), SW-C ports, PIRTE virtual ports,
//! plug-in-local ports, plug-ins, applications (bundles of plug-ins), vehicles
//! and users.  Confusing any two of these spaces produces exactly the kind of
//! mis-routing bug the PIC/PLC contexts are designed to prevent, so each space
//! gets its own newtype here ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an electronic control unit within one vehicle.
///
/// # Example
/// ```
/// use dynar_foundation::ids::EcuId;
/// let ecu = EcuId::new(2);
/// assert_eq!(ecu.index(), 2);
/// assert_eq!(ecu.to_string(), "ECU2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EcuId(u16);

impl EcuId {
    /// Creates an ECU identifier from its index within the vehicle topology.
    pub fn new(index: u16) -> Self {
        EcuId(index)
    }

    /// Returns the raw index.
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for EcuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ECU{}", self.0)
    }
}

/// Identifier of a software component instance, scoped to its hosting ECU.
///
/// # Example
/// ```
/// use dynar_foundation::ids::{EcuId, SwcId};
/// let swc = SwcId::new(EcuId::new(1), 3);
/// assert_eq!(swc.ecu().index(), 1);
/// assert_eq!(swc.local_index(), 3);
/// assert_eq!(swc.to_string(), "ECU1/SWC3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwcId {
    ecu: EcuId,
    local: u16,
}

impl SwcId {
    /// Creates a SW-C identifier from its hosting ECU and per-ECU index.
    pub fn new(ecu: EcuId, local: u16) -> Self {
        SwcId { ecu, local }
    }

    /// The ECU hosting this SW-C.
    pub fn ecu(self) -> EcuId {
        self.ecu
    }

    /// The SW-C index local to its ECU.
    pub fn local_index(self) -> u16 {
        self.local
    }
}

impl fmt::Display for SwcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/SWC{}", self.ecu, self.local)
    }
}

/// Identifier of an AUTOSAR SW-C port, scoped to its owning SW-C.
///
/// These are the `S0`, `S1`, ... ports of the paper's Figure 3: ordinary RTE
/// ports, regardless of whether the PIRTE treats them as type I, II or III.
///
/// # Example
/// ```
/// use dynar_foundation::ids::{EcuId, PortId, SwcId};
/// let swc = SwcId::new(EcuId::new(1), 0);
/// let port = PortId::new(swc, 4);
/// assert_eq!(port.swc(), swc);
/// assert_eq!(port.to_string(), "ECU1/SWC0:S4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId {
    swc: SwcId,
    index: u16,
}

impl PortId {
    /// Creates a port identifier from its owning SW-C and port index.
    pub fn new(swc: SwcId, index: u16) -> Self {
        PortId { swc, index }
    }

    /// The SW-C owning this port.
    pub fn swc(self) -> SwcId {
        self.swc
    }

    /// The port index within its SW-C.
    pub fn index(self) -> u16 {
        self.index
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:S{}", self.swc, self.index)
    }
}

/// Identifier of a PIRTE virtual port (the `V0`, `V1`, ... ports of Figure 3).
///
/// Virtual ports are the static API exposed by a plug-in SW-C to the plug-ins
/// it hosts; they are scoped to that SW-C.
///
/// # Example
/// ```
/// use dynar_foundation::ids::VirtualPortId;
/// let v = VirtualPortId::new(5);
/// assert_eq!(v.index(), 5);
/// assert_eq!(v.to_string(), "V5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtualPortId(u16);

impl VirtualPortId {
    /// Creates a virtual-port identifier from its index within the PIRTE.
    pub fn new(index: u16) -> Self {
        VirtualPortId(index)
    }

    /// Returns the index within the PIRTE.
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for VirtualPortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// Identifier of a plug-in port (the `P0`, `P1`, ... ports of Figure 3).
///
/// Plug-in port ids are *SW-C-scope unique*: the trusted server assigns them
/// when it generates the Port Initialization Context so that any number of
/// plug-ins can coexist inside one plug-in SW-C without colliding.
///
/// # Example
/// ```
/// use dynar_foundation::ids::PluginPortId;
/// let p = PluginPortId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PluginPortId(u32);

impl PluginPortId {
    /// Creates a plug-in port identifier from its SW-C-scope unique index.
    pub fn new(index: u32) -> Self {
        PluginPortId(index)
    }

    /// Returns the SW-C-scope unique index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PluginPortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Globally unique identifier of an installed plug-in instance.
///
/// # Example
/// ```
/// use dynar_foundation::ids::PluginId;
/// let com = PluginId::new("COM");
/// assert_eq!(com.name(), "COM");
/// assert_eq!(com.to_string(), "plugin:COM");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PluginId(String);

impl PluginId {
    /// Creates a plug-in identifier from its unique name.
    pub fn new(name: impl Into<String>) -> Self {
        PluginId(name.into())
    }

    /// Returns the plug-in name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PluginId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plugin:{}", self.0)
    }
}

impl From<&str> for PluginId {
    fn from(name: &str) -> Self {
        PluginId::new(name)
    }
}

/// Identifier of an application: a deployable bundle of one or more plug-ins
/// stored in the trusted server's `APP` module.
///
/// # Example
/// ```
/// use dynar_foundation::ids::AppId;
/// let app = AppId::new("remote-control");
/// assert_eq!(app.name(), "remote-control");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(String);

impl AppId {
    /// Creates an application identifier from its unique name.
    pub fn new(name: impl Into<String>) -> Self {
        AppId(name.into())
    }

    /// Returns the application name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app:{}", self.0)
    }
}

impl From<&str> for AppId {
    fn from(name: &str) -> Self {
        AppId::new(name)
    }
}

/// Identifier of a vehicle registered with the trusted server.
///
/// # Example
/// ```
/// use dynar_foundation::ids::VehicleId;
/// let vin = VehicleId::new("VIN-0001");
/// assert_eq!(vin.vin(), "VIN-0001");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleId(String);

impl VehicleId {
    /// Creates a vehicle identifier from its VIN-like unique string.
    pub fn new(vin: impl Into<String>) -> Self {
        VehicleId(vin.into())
    }

    /// Returns the VIN-like unique string.
    pub fn vin(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vehicle:{}", self.0)
    }
}

impl From<&str> for VehicleId {
    fn from(vin: &str) -> Self {
        VehicleId::new(vin)
    }
}

/// Identifier of a user account on the trusted server.
///
/// # Example
/// ```
/// use dynar_foundation::ids::UserId;
/// let user = UserId::new("alice");
/// assert_eq!(user.name(), "alice");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(String);

impl UserId {
    /// Creates a user identifier from its unique account name.
    pub fn new(name: impl Into<String>) -> Self {
        UserId(name.into())
    }

    /// Returns the account name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user:{}", self.0)
    }
}

impl From<&str> for UserId {
    fn from(name: &str) -> Self {
        UserId::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ecu_id_round_trip() {
        let ecu = EcuId::new(7);
        assert_eq!(ecu.index(), 7);
        assert_eq!(format!("{ecu}"), "ECU7");
    }

    #[test]
    fn swc_id_carries_ecu() {
        let swc = SwcId::new(EcuId::new(3), 9);
        assert_eq!(swc.ecu(), EcuId::new(3));
        assert_eq!(swc.local_index(), 9);
        assert_eq!(format!("{swc}"), "ECU3/SWC9");
    }

    #[test]
    fn port_id_is_scoped_to_swc() {
        let a = PortId::new(SwcId::new(EcuId::new(0), 0), 1);
        let b = PortId::new(SwcId::new(EcuId::new(1), 0), 1);
        assert_ne!(a, b, "same index on different SW-Cs must differ");
        assert_eq!(format!("{a}"), "ECU0/SWC0:S1");
    }

    #[test]
    fn plugin_and_virtual_ports_display_like_figure_3() {
        assert_eq!(PluginPortId::new(3).to_string(), "P3");
        assert_eq!(VirtualPortId::new(5).to_string(), "V5");
    }

    #[test]
    fn string_ids_compare_by_content() {
        assert_eq!(PluginId::new("COM"), PluginId::from("COM"));
        assert_eq!(AppId::new("x"), AppId::from("x"));
        assert_eq!(VehicleId::new("v"), VehicleId::from("v"));
        assert_eq!(UserId::new("u"), UserId::from("u"));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for ecu in 0..4u16 {
            for swc in 0..4u16 {
                for port in 0..4u16 {
                    set.insert(PortId::new(SwcId::new(EcuId::new(ecu), swc), port));
                }
            }
        }
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn ordering_is_lexicographic_over_components() {
        let lo = SwcId::new(EcuId::new(0), 5);
        let hi = SwcId::new(EcuId::new(1), 0);
        assert!(lo < hi);
    }
}
