//! Slot interning: dense `u32` indices for the hot-path id spaces.
//!
//! The routing planes of the RTE, the bus and the PIRTE all started life as
//! `HashMap<SomeId, …>` lookups on every signal.  Those ids change rarely —
//! ports appear when a component registers, frame subscriptions when a vehicle
//! is wired, plug-in ports when a plug-in is (un)installed — while signals
//! flow every tick.  An [`Interner`] assigns each key a dense [`Slot`] once,
//! on the slow reconfiguration plane, so the fast signal plane can index flat
//! `Vec`s instead of hashing.
//!
//! [`SlotSet`] is the companion bitset over slots, used for membership tests
//! such as bus acceptance filters.
//!
//! # Example
//! ```
//! use dynar_foundation::intern::{Interner, SlotSet};
//!
//! let mut interner = Interner::new();
//! let a = interner.intern("brake");
//! let b = interner.intern("throttle");
//! assert_eq!(interner.intern("brake"), a, "interning is idempotent");
//! assert_ne!(a, b);
//!
//! let mut set = SlotSet::new();
//! set.insert(a);
//! assert!(set.contains(a));
//! assert!(!set.contains(b));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// A dense index handed out by an [`Interner`].
///
/// Slots are plain `u32`s under the hood; [`Slot::index`] converts to `usize`
/// for direct `Vec` indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Slot(u32);

impl Slot {
    /// Creates a slot from a raw dense index (used by tables that mirror an
    /// interner's layout).
    pub fn from_raw(raw: u32) -> Self {
        Slot(raw)
    }

    /// The raw dense index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The dense index as a `usize`, for `Vec` indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Maps keys of an id space onto dense [`Slot`]s.
///
/// Interning the same key twice returns the same slot.  Removing a key frees
/// its slot for reuse by the next interned key, so the dense table width
/// ([`Interner::capacity`]) stays bounded by the high-water mark of live keys
/// — reconfiguration cycles (install → uninstall → reinstall) do not leak
/// slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interner<K> {
    slots: HashMap<K, Slot>,
    /// Dense table: slot index → key (`None` for freed slots).
    keys: Vec<Option<K>>,
    free: Vec<Slot>,
}

impl<K> Default for Interner<K> {
    fn default() -> Self {
        Interner {
            slots: HashMap::new(),
            keys: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Clone> Interner<K> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the slot for `key`, assigning the lowest free slot on first
    /// sight.
    pub fn intern(&mut self, key: K) -> Slot {
        if let Some(&slot) = self.slots.get(&key) {
            return slot;
        }
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = Slot(u32::try_from(self.keys.len()).expect("interner overflow"));
                self.keys.push(None);
                slot
            }
        };
        self.keys[slot.index()] = Some(key.clone());
        self.slots.insert(key, slot);
        slot
    }

    /// The slot previously assigned to `key`, if any.
    pub fn get(&self, key: &K) -> Option<Slot> {
        self.slots.get(key).copied()
    }

    /// The key occupying `slot`, if the slot is live.
    pub fn key_of(&self, slot: Slot) -> Option<&K> {
        self.keys.get(slot.index()).and_then(Option::as_ref)
    }

    /// Frees the slot of `key`, returning it for reuse.
    pub fn remove(&mut self, key: &K) -> Option<Slot> {
        let slot = self.slots.remove(key)?;
        self.keys[slot.index()] = None;
        self.free.push(slot);
        Some(slot)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no keys are interned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Width of the dense table (live + freed slots): the size any `Vec`
    /// indexed by these slots must have.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Iterates over the live `(slot, key)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &K)> {
        self.keys
            .iter()
            .enumerate()
            .filter_map(|(index, key)| key.as_ref().map(|k| (Slot(index as u32), k)))
    }
}

/// A bitset over [`Slot`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotSet {
    words: Vec<u64>,
    len: usize,
}

impl SlotSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SlotSet::default()
    }

    /// Inserts a slot, returning `true` if it was not already present.
    pub fn insert(&mut self, slot: Slot) -> bool {
        let (word, bit) = (slot.index() / 64, slot.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.len += 1;
        true
    }

    /// Removes a slot, returning `true` if it was present.
    pub fn remove(&mut self, slot: Slot) -> bool {
        let (word, bit) = (slot.index() / 64, slot.index() % 64);
        let Some(bits) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        if *bits & mask == 0 {
            return false;
        }
        *bits &= !mask;
        self.len -= 1;
        true
    }

    /// Returns `true` if the slot is in the set.
    pub fn contains(&self, slot: Slot) -> bool {
        let (word, bit) = (slot.index() / 64, slot.index() % 64);
        self.words
            .get(word)
            .is_some_and(|bits| bits & (1u64 << bit) != 0)
    }

    /// Number of slots in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every slot.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Iterates over the slots in the set in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Slot> + '_ {
        self.words.iter().enumerate().flat_map(|(word, &bits)| {
            (0..64)
                .filter(move |bit| bits & (1u64 << bit) != 0)
                .map(move |bit| Slot((word * 64 + bit) as u32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(interner.intern("a"), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.capacity(), 2);
        assert_eq!(interner.get(&"a"), Some(a));
        assert_eq!(interner.key_of(b), Some(&"b"));
        assert_eq!(interner.get(&"zzz"), None);
    }

    #[test]
    fn removed_slots_are_reused_not_leaked() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let _b = interner.intern("b");
        assert_eq!(interner.remove(&"a"), Some(a));
        assert_eq!(interner.get(&"a"), None);
        assert_eq!(interner.key_of(a), None);
        assert_eq!(interner.len(), 1);

        // The freed slot is handed to the next key; the table does not grow.
        let c = interner.intern("c");
        assert_eq!(c, a);
        assert_eq!(interner.capacity(), 2);
        assert_eq!(interner.remove(&"a"), None, "already removed");
    }

    #[test]
    fn install_uninstall_reinstall_cycle_keeps_capacity_bounded() {
        let mut interner = Interner::new();
        for _round in 0..100 {
            let slots: Vec<Slot> = (0..8).map(|i| interner.intern(i)).collect();
            assert!(slots.iter().all(|s| s.index() < 8));
            for i in 0..8 {
                interner.remove(&i);
            }
            assert!(interner.is_empty());
        }
        assert_eq!(interner.capacity(), 8, "no stale slots accumulate");
    }

    #[test]
    fn iter_yields_live_pairs_in_slot_order() {
        let mut interner = Interner::new();
        interner.intern("x");
        interner.intern("y");
        interner.intern("z");
        interner.remove(&"y");
        let pairs: Vec<(u32, &&str)> = interner.iter().map(|(s, k)| (s.raw(), k)).collect();
        assert_eq!(pairs, vec![(0, &"x"), (2, &"z")]);
    }

    #[test]
    fn slot_set_membership() {
        let mut set = SlotSet::new();
        assert!(set.insert(Slot::from_raw(3)));
        assert!(set.insert(Slot::from_raw(100)));
        assert!(!set.insert(Slot::from_raw(3)), "already present");
        assert!(set.contains(Slot::from_raw(3)));
        assert!(!set.contains(Slot::from_raw(4)));
        assert!(!set.contains(Slot::from_raw(100_000)), "beyond the words");
        assert_eq!(set.len(), 2);

        assert!(set.remove(Slot::from_raw(3)));
        assert!(!set.remove(Slot::from_raw(3)));
        assert!(!set.remove(Slot::from_raw(100_000)));
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![Slot::from_raw(100)]);

        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn slot_display_and_accessors() {
        let slot = Slot::from_raw(7);
        assert_eq!(slot.raw(), 7);
        assert_eq!(slot.index(), 7);
        assert_eq!(slot.to_string(), "#7");
    }
}
