//! The wire protocol between the trusted server and a vehicle's ECM.
//!
//! Downlink messages (server → vehicle) carry the id of the recipient ECU
//! plus a management message, exactly the addressing described in §3.1.3
//! ("an id of the recipient plug-in SW-C").  Uplink messages (vehicle →
//! server) are plain management messages — in practice acknowledgements.

use dynar_core::message::ManagementMessage;
use dynar_foundation::codec;
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::EcuId;
use dynar_foundation::value::Value;

/// Encodes a downlink message addressed to one ECU of the vehicle.
pub fn encode_downlink(target: EcuId, message: &ManagementMessage) -> Vec<u8> {
    codec::encode_value(&Value::List(vec![
        Value::I64(i64::from(target.index())),
        message.to_value(),
    ]))
}

/// Decodes a downlink message into its target ECU and management message.
///
/// # Errors
///
/// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
pub fn decode_downlink(bytes: &[u8]) -> Result<(EcuId, ManagementMessage)> {
    let value = codec::decode_value(bytes)?;
    let parts = value
        .as_list()
        .ok_or_else(|| DynarError::ProtocolViolation("downlink is not a list".into()))?;
    let [target, message] = parts else {
        return Err(DynarError::ProtocolViolation(
            "downlink must carry a target and a message".into(),
        ));
    };
    Ok((
        EcuId::new(target.expect_i64()? as u16),
        ManagementMessage::from_value(message)?,
    ))
}

/// Encodes an uplink (vehicle → server) message.
pub fn encode_uplink(message: &ManagementMessage) -> Vec<u8> {
    message.to_bytes()
}

/// Decodes an uplink message.
///
/// # Errors
///
/// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
pub fn decode_uplink(bytes: &[u8]) -> Result<ManagementMessage> {
    ManagementMessage::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynar_core::message::{Ack, AckStatus};
    use dynar_foundation::ids::{AppId, PluginId};

    #[test]
    fn downlink_round_trip() {
        let message = ManagementMessage::Uninstall {
            plugin: PluginId::new("OP"),
        };
        let bytes = encode_downlink(EcuId::new(2), &message);
        let (target, decoded) = decode_downlink(&bytes).unwrap();
        assert_eq!(target, EcuId::new(2));
        assert_eq!(decoded, message);
    }

    #[test]
    fn uplink_round_trip() {
        let message = ManagementMessage::Ack(Ack {
            plugin: PluginId::new("OP"),
            app: AppId::new("remote-control"),
            ecu: EcuId::new(2),
            status: AckStatus::Installed,
        });
        assert_eq!(decode_uplink(&encode_uplink(&message)).unwrap(), message);
    }

    #[test]
    fn malformed_downlink_is_rejected() {
        assert!(decode_downlink(&[1, 2, 3]).is_err());
        assert!(decode_downlink(&codec::encode_value(&Value::I64(3))).is_err());
        assert!(decode_downlink(&codec::encode_value(&Value::List(vec![Value::I64(1)]))).is_err());
    }
}
