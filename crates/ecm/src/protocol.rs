//! The wire protocol between the trusted server and a vehicle's ECM.
//!
//! Downlink messages (server → vehicle) carry the id of the recipient ECU, a
//! per-vehicle monotonically increasing sequence id, and a management message
//! — the addressing described in §3.1.3 ("an id of the recipient plug-in
//! SW-C") extended with the sequence id the federation reliability plane uses
//! to deduplicate retransmitted deliveries.  Uplink messages (vehicle →
//! server) are plain management messages — in practice acknowledgements.

use dynar_core::message::{DownlinkEnvelope, ManagementMessage};
use dynar_foundation::error::Result;
use dynar_foundation::ids::EcuId;

/// Encodes a downlink message addressed to one ECU of the vehicle, stamped
/// with the vehicle boot epoch the server believes it is talking to and the
/// server incarnation issuing it.
pub fn encode_downlink(
    target: EcuId,
    seq: u64,
    boot_epoch: u32,
    incarnation: u32,
    message: &ManagementMessage,
) -> Vec<u8> {
    DownlinkEnvelope::new(target, seq, boot_epoch, incarnation, message.clone()).to_bytes()
}

/// Decodes a downlink message into its full envelope: target ECU, sequence
/// id, boot epoch, server incarnation and management message.
///
/// # Errors
///
/// Returns [`dynar_foundation::error::DynarError::ProtocolViolation`] for
/// malformed encodings; target ids outside the `u16` ECU-id range, negative
/// sequence ids and out-of-range boot epochs or incarnations are rejected,
/// never silently truncated.
pub fn decode_downlink(bytes: &[u8]) -> Result<DownlinkEnvelope> {
    DownlinkEnvelope::from_bytes(bytes)
}

/// Encodes an uplink (vehicle → server) message.
pub fn encode_uplink(message: &ManagementMessage) -> Vec<u8> {
    message.to_bytes()
}

/// Decodes an uplink message.
///
/// # Errors
///
/// Returns [`dynar_foundation::error::DynarError::ProtocolViolation`] for
/// malformed encodings.
pub fn decode_uplink(bytes: &[u8]) -> Result<ManagementMessage> {
    ManagementMessage::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynar_core::message::{Ack, AckStatus};
    use dynar_foundation::codec;
    use dynar_foundation::error::DynarError;
    use dynar_foundation::ids::{AppId, PluginId};
    use dynar_foundation::value::Value;

    #[test]
    fn downlink_round_trip() {
        let message = ManagementMessage::Uninstall {
            plugin: PluginId::new("OP"),
        };
        let bytes = encode_downlink(EcuId::new(2), 9, 4, 1, &message);
        let envelope = decode_downlink(&bytes).unwrap();
        assert_eq!(envelope.target, EcuId::new(2));
        assert_eq!(envelope.seq, 9);
        assert_eq!(envelope.boot_epoch, 4);
        assert_eq!(envelope.incarnation, 1);
        assert_eq!(envelope.message, message);
    }

    #[test]
    fn uplink_round_trip() {
        let message = ManagementMessage::Ack(Ack {
            plugin: PluginId::new("OP"),
            app: AppId::new("remote-control"),
            ecu: EcuId::new(2),
            status: AckStatus::Installed,
        });
        assert_eq!(decode_uplink(&encode_uplink(&message)).unwrap(), message);
    }

    #[test]
    fn malformed_downlink_is_rejected() {
        assert!(decode_downlink(&[1, 2, 3]).is_err());
        assert!(decode_downlink(&codec::encode_value(&Value::I64(3))).is_err());
        assert!(decode_downlink(&codec::encode_value(&Value::List(vec![Value::I64(1)]))).is_err());
    }

    /// Regression: a target id outside the `u16` range used to be truncated
    /// by an `as u16` cast into a *valid* — but wrong — ECU id.  It must be a
    /// protocol violation instead.
    #[test]
    fn out_of_range_targets_are_rejected_not_truncated() {
        let message = ManagementMessage::Uninstall {
            plugin: PluginId::new("OP"),
        };
        // 0x1_0002 would truncate to ECU 2 under the old cast.
        for bad_target in [-1i64, 0x1_0002, i64::from(u16::MAX) + 1] {
            let bytes = codec::encode_value(&Value::List(vec![
                Value::I64(bad_target),
                Value::I64(0),
                Value::I64(0),
                Value::I64(0),
                message.to_value(),
            ]));
            let err = decode_downlink(&bytes).unwrap_err();
            assert!(
                matches!(err, DynarError::ProtocolViolation(_)),
                "target {bad_target}: expected protocol violation, got {err:?}"
            );
        }
        let negative_seq = codec::encode_value(&Value::List(vec![
            Value::I64(1),
            Value::I64(-1),
            Value::I64(0),
            Value::I64(0),
            message.to_value(),
        ]));
        assert!(matches!(
            decode_downlink(&negative_seq).unwrap_err(),
            DynarError::ProtocolViolation(_)
        ));
    }
}
