//! The ECM gateway component behaviour.
//!
//! Besides relaying management messages and external data, the gateway is
//! the vehicle-side half of the federation reliability plane: every downlink
//! carries a sequence id, and the gateway keeps a bounded window of recently
//! seen ids together with the acknowledgements they produced.  A duplicate
//! delivery (the trusted server retransmitting an unacked package) is *not*
//! re-applied — reinstall-on-retry stays idempotent — but its cached
//! acknowledgements are replayed, so a lost uplink ack is recovered by the
//! next retransmission.  Duplicates older than the window itself
//! (`highest_seen - DEDUP_WINDOW`) are rejected outright: their cached acks
//! are gone, but re-applying them would break idempotence, so they are
//! dropped and the server's newer state wins.
//!
//! # Boot epochs and recovery
//!
//! The dedup window and the installed plug-ins are *volatile*: a vehicle
//! reboot loses both.  Every gateway therefore carries a **boot epoch**
//! ([`EcmConfig::boot_epoch`], bumped by the harness on every reboot) and
//! rejects downlinks stamped with any other epoch — a straggler
//! retransmission from before the reboot can never be double-applied against
//! the empty window.  A rebooted gateway (epoch > 0) announces itself with a
//! [`ManagementMessage::StateReport`] listing what is actually installed
//! (nothing, right after boot) and keeps re-announcing every
//! [`ANNOUNCE_PERIOD_TICKS`] until the first downlink of its own epoch
//! proves the trusted server has resynced; the server then reconciles the
//! vehicle from truth instead of from its stale bookkeeping.
//!
//! # Server incarnations
//!
//! The trusted server carries the mirror-image epoch: a **server incarnation
//! id** stamped on every downlink envelope, bumped when a crashed server is
//! replayed from its journal.  The gateway tracks the highest incarnation it
//! has seen; downlinks from a *lower* incarnation are stragglers from before
//! the crash and are rejected before the dedup-replay check (their cached
//! acks must not settle post-restart operations), while the first downlink
//! from a *higher* incarnation triggers an unsolicited state report so the
//! restarted server resyncs from vehicle ground truth.
//!
//! Cached acknowledgements are stored as already-encoded [`Payload`] buffers:
//! caching, queueing and every replay share one allocation, and a replayed
//! ack is byte-identical to the original by construction.  The per-tick poll
//! paths drain the transport through a reused buffer and read SW-C ports by
//! pre-resolved ids, so a quiescent gateway pass allocates nothing.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use dynar_core::context::ExternalRoute;
use dynar_core::message::ManagementMessage;
use dynar_core::pirte::Pirte;
use dynar_core::swc::{PluginSwc, PluginSwcConfig, SharedPirte};
use dynar_fes::device::{decode_device_message, encode_device_message};
use dynar_fes::transport::{EndpointName, SharedTransport};
use dynar_foundation::error::Result;
use dynar_foundation::ids::{AppId, EcuId, PluginId, PluginPortId, PortId};
use dynar_foundation::payload::Payload;
use dynar_foundation::value::Value;
use dynar_rte::component::{ComponentBehavior, RteContext, SwcDescriptor};

/// A shared handle to the external transport, used by the ECM and the
/// simulation harness.  The gateway only sees the [`Transport`] trait, so
/// the deterministic hub and the UDP wire backend are interchangeable here.
///
/// [`Transport`]: dynar_fes::transport::Transport
pub type SharedHub = SharedTransport;

/// How many downlink sequence ids the gateway remembers for deduplication;
/// ids older than `highest_seen - DEDUP_WINDOW` are pruned.
///
/// The window is counted in *sequence ids*, not ticks: it must exceed the
/// number of downlink packages the server can push to one vehicle while any
/// earlier package is still being retransmitted (bounded by concurrent
/// pending operations × plug-ins per operation, plus restore pushes — far
/// below 1024 for every workload in this repository).  An evicted id would
/// let a still-in-flight retransmission be re-applied as a fresh downlink.
pub const DEDUP_WINDOW: u64 = 1024;

/// How often (in runnable passes) a rebooted gateway re-announces its
/// [`ManagementMessage::StateReport`] until the trusted server confirms the
/// new boot epoch with a downlink.  The announcement travels over the lossy
/// uplink, so a single shot could strand the vehicle offline forever.
pub const ANNOUNCE_PERIOD_TICKS: u64 = 25;

/// Bookkeeping for one downlink sequence id the gateway has applied.
#[derive(Debug, Clone)]
struct SeenDownlink {
    /// The plug-in the downlink addressed (used to attach remote acks).
    plugin: Option<PluginId>,
    /// Encoded uplink responses the downlink produced, replayed verbatim on
    /// duplicates (same shared buffer as the original send).
    acks: Vec<Payload>,
}

/// Static configuration of the ECM SW-C.
#[derive(Debug, Clone)]
pub struct EcmConfig {
    /// The plug-in SW-C configuration of the ECM itself (the ECM hosts
    /// plug-ins such as the COM plug-in of the demonstrator).
    pub swc: PluginSwcConfig,
    /// The ECM's own endpoint name on the external transport.
    pub own_endpoint: String,
    /// The trusted server's endpoint name, pre-defined by the OEM (§3.2).
    pub server_endpoint: String,
    /// SW-C port used to send management messages towards each remote ECU's
    /// plug-in SW-C (the provided half of each type I port pair).
    pub type_i_out: HashMap<EcuId, String>,
    /// SW-C ports on which acknowledgements and outbound data from remote
    /// plug-in SW-Cs arrive (the required half of each type I port pair).
    pub type_i_in: Vec<String>,
    /// The vehicle's boot epoch: 0 at the factory boot, bumped on every
    /// reboot.  Downlinks stamped with any other epoch are rejected.
    pub boot_epoch: u32,
}

impl EcmConfig {
    /// Creates an ECM configuration with no remote plug-in SW-Cs.
    pub fn new(
        swc: PluginSwcConfig,
        own_endpoint: impl Into<String>,
        server_endpoint: impl Into<String>,
    ) -> Self {
        EcmConfig {
            swc,
            own_endpoint: own_endpoint.into(),
            server_endpoint: server_endpoint.into(),
            type_i_out: HashMap::new(),
            type_i_in: Vec::new(),
            boot_epoch: 0,
        }
    }

    /// Sets the boot epoch of this ECM incarnation (0 is the factory boot; a
    /// rebooted vehicle comes back with the next epoch and announces itself
    /// with a state report).
    #[must_use]
    pub fn with_boot_epoch(mut self, boot_epoch: u32) -> Self {
        self.boot_epoch = boot_epoch;
        self
    }

    /// Declares the type I SW-C port pair towards one remote plug-in SW-C.
    #[must_use]
    pub fn with_remote_swc(
        mut self,
        ecu: EcuId,
        out_port: impl Into<String>,
        in_port: impl Into<String>,
    ) -> Self {
        self.type_i_out.insert(ecu, out_port.into());
        self.type_i_in.push(in_port.into());
        self
    }

    /// Builds the AUTOSAR descriptor of the ECM SW-C: the plug-in SW-C ports
    /// of its own PIRTE plus the type I port pairs towards remote SW-Cs.
    ///
    /// # Errors
    ///
    /// Propagates configuration-validation errors.
    pub fn descriptor(&self) -> Result<SwcDescriptor> {
        use dynar_rte::port::{PortDirection, PortSpec};
        let mut descriptor = self.swc.descriptor()?;
        for port in self.type_i_out.values() {
            descriptor =
                descriptor.with_port(PortSpec::sender_receiver(port, PortDirection::Provided));
        }
        for port in &self.type_i_in {
            descriptor = descriptor.with_port(PortSpec::queued(port, PortDirection::Required, 32));
        }
        Ok(descriptor)
    }
}

/// The ECM component behaviour: a plug-in SW-C with an external
/// communication module.
#[derive(Debug)]
pub struct EcmSwc {
    ecu: EcuId,
    config: EcmConfig,
    pirte: SharedPirte,
    hub: SharedHub,
    pirte_inputs: Vec<String>,
    /// `pirte_inputs` resolved to RTE port ids on the first runnable pass.
    resolved_inputs: Option<Vec<(String, PortId)>>,
    /// `EcmConfig::type_i_in` resolved to `(config index, port id)` pairs on
    /// the first pass (unresolvable ports are warned about and skipped).
    resolved_type_i_in: Option<Vec<(usize, PortId)>>,
    /// Reused drain buffer for the external transport mailbox.
    rx_scratch: Vec<(EndpointName, Payload)>,
    /// Reused drain buffer for the PIRTE outbox.
    outbox_scratch: Vec<(std::sync::Arc<str>, Value)>,
    /// External routes learned from the ECCs of installed plug-ins.
    ecc_routes: Vec<ExternalRoute>,
    /// Encoded uplink messages waiting for the next runnable pass.
    pending_uplink: Vec<Payload>,
    /// Recently applied downlink sequence ids and their cached acks
    /// (bounded by [`DEDUP_WINDOW`]).
    seen_seqs: BTreeMap<u64, SeenDownlink>,
    /// The boot epoch of this gateway incarnation (copied from the config).
    boot_epoch: u32,
    /// Ground truth of the vehicle: every plug-in known to be installed
    /// (locally or on a remote ECU), maintained from the successful
    /// install/uninstall acknowledgements that pass through the gateway.
    /// Volatile — a reboot loses it, which is exactly what the state report
    /// tells the server.
    installed_plugins: BTreeMap<PluginId, (AppId, EcuId)>,
    /// `true` once a downlink of this gateway's own epoch arrived, proving
    /// the server knows the epoch (rebooted gateways re-announce until then).
    epoch_confirmed: bool,
    /// The highest trusted-server incarnation id seen on a downlink.  A
    /// *lower* incarnation is a straggler from before a server crash and is
    /// rejected outright (its cached acks must not settle post-restart ops);
    /// a *higher* one announces a restarted server, which is answered with an
    /// unsolicited state report so the replayed control plane can resync from
    /// vehicle ground truth.
    server_incarnation: u32,
    /// Runnable passes executed (drives the announce retransmission period).
    passes: u64,
}

impl EcmSwc {
    /// Creates the ECM behaviour and the shared handle to its PIRTE.
    ///
    /// The ECM registers its own endpoint on the transport hub; the trusted
    /// server and external devices register theirs.
    pub fn create(ecu: EcuId, config: EcmConfig, hub: SharedHub) -> (Self, SharedPirte) {
        hub.lock().register(&config.own_endpoint);
        let pirte_inputs = config.swc.input_ports();
        let pirte: SharedPirte = Arc::new(Mutex::new(Pirte::new(ecu, config.swc.clone())));
        let boot_epoch = config.boot_epoch;
        (
            EcmSwc {
                ecu,
                config,
                pirte: Arc::clone(&pirte),
                hub,
                pirte_inputs,
                resolved_inputs: None,
                resolved_type_i_in: None,
                rx_scratch: Vec::new(),
                outbox_scratch: Vec::new(),
                ecc_routes: Vec::new(),
                pending_uplink: Vec::new(),
                seen_seqs: BTreeMap::new(),
                boot_epoch,
                installed_plugins: BTreeMap::new(),
                // The factory boot matches the trusted server's initial
                // assumption (epoch 0, nothing installed): no announcement
                // needed.  Rebooted incarnations must make themselves known.
                epoch_confirmed: boot_epoch == 0,
                server_incarnation: 0,
                passes: 0,
            },
            pirte,
        )
    }

    /// The boot epoch of this gateway incarnation.
    pub fn boot_epoch(&self) -> u32 {
        self.boot_epoch
    }

    /// The highest trusted-server incarnation id seen on a downlink (0 until
    /// the first downlink from a restarted server arrives).
    pub fn server_incarnation(&self) -> u32 {
        self.server_incarnation
    }

    /// The gateway's ground-truth inventory: every plug-in it knows to be
    /// installed across the vehicle, with its owning app and hosting ECU.
    pub fn installed_plugins(&self) -> &BTreeMap<PluginId, (AppId, EcuId)> {
        &self.installed_plugins
    }

    /// The shared handle to the ECM's own PIRTE.
    pub fn pirte(&self) -> SharedPirte {
        Arc::clone(&self.pirte)
    }

    /// The external routes currently known to the ECM.
    pub fn routes(&self) -> &[ExternalRoute] {
        &self.ecc_routes
    }

    fn remember_ecc(&mut self, message: &ManagementMessage) {
        if let ManagementMessage::Install(package) = message {
            if let Some(ecc) = &package.context.ecc {
                for route in ecc.routes() {
                    if !self.ecc_routes.contains(route) {
                        self.ecc_routes.push(route.clone());
                    }
                }
            }
        }
    }

    fn route_for_message(&self, message_id: &str) -> Option<&ExternalRoute> {
        self.ecc_routes.iter().find(|r| r.message_id == message_id)
    }

    fn route_for_port(&self, ecu: EcuId, port: PluginPortId) -> Option<&ExternalRoute> {
        self.ecc_routes
            .iter()
            .find(|r| r.ecu == ecu && r.port == port)
    }

    /// Encodes `message` once, sends it uplink and returns the shared buffer
    /// (for the dedup-replay cache).
    fn send_uplink(&self, message: &ManagementMessage) -> Payload {
        let payload: Payload = crate::protocol::encode_uplink(message).into();
        self.send_uplink_payload(&payload);
        payload
    }

    /// Sends an already-encoded uplink payload (a refcount bump, no copy).
    fn send_uplink_payload(&self, payload: &Payload) {
        let mut hub = self.hub.lock();
        let _ = hub.send(
            &self.config.own_endpoint,
            &self.config.server_endpoint,
            payload.clone(),
        );
    }

    /// The plug-in a management message addresses, if any.
    fn plugin_of(message: &ManagementMessage) -> Option<PluginId> {
        match message {
            ManagementMessage::Install(package) => Some(package.plugin.clone()),
            ManagementMessage::Uninstall { plugin }
            | ManagementMessage::Stop { plugin }
            | ManagementMessage::Start { plugin } => Some(plugin.clone()),
            _ => None,
        }
    }

    /// Folds a passing acknowledgement into the gateway's ground-truth
    /// inventory of installed plug-ins.
    fn note_ack(&mut self, message: &ManagementMessage) {
        let ManagementMessage::Ack(ack) = message else {
            return;
        };
        match &ack.status {
            dynar_core::message::AckStatus::Installed => {
                self.installed_plugins
                    .insert(ack.plugin.clone(), (ack.app.clone(), ack.ecu));
            }
            dynar_core::message::AckStatus::Uninstalled => {
                self.installed_plugins.remove(&ack.plugin);
            }
            _ => {}
        }
    }

    /// Encodes and sends the current [`ManagementMessage::StateReport`]
    /// uplink, returning the shared buffer (for the dedup-replay cache).
    fn send_state_report(&self) -> Payload {
        let report = ManagementMessage::StateReport {
            boot_epoch: self.boot_epoch,
            plugins: self
                .installed_plugins
                .iter()
                .map(|(plugin, (app, ecu))| (plugin.clone(), app.clone(), *ecu))
                .collect(),
        };
        self.send_uplink(&report)
    }

    /// Applies a management message to the local PIRTE, returning the
    /// encoded responses it produced (already sent uplink).
    fn handle_local_management(&mut self, message: ManagementMessage) -> Vec<Payload> {
        let responses = self.pirte.lock().handle_management(message);
        let mut encoded = Vec::with_capacity(responses.len());
        for response in &responses {
            self.note_ack(response);
            encoded.push(self.send_uplink(response));
        }
        encoded
    }

    /// Relays a management message towards a remote plug-in SW-C.
    ///
    /// Returns `Some(acks)` when the downlink was applied — either relayed
    /// (no synchronous acks) or answered with a failure acknowledgement
    /// (sent and returned for the dedup cache) because no type I route
    /// exists.  Returns `None` when the relay write failed transiently: the
    /// downlink was *not* applied and its sequence id must not be marked as
    /// seen, so the server's next retransmission gets to retry the relay.
    fn forward_to_remote(
        &mut self,
        ctx: &mut RteContext<'_>,
        target: EcuId,
        message: &ManagementMessage,
    ) -> Option<Vec<Payload>> {
        match self.config.type_i_out.get(&target) {
            Some(port) => {
                if let Err(err) = ctx.write(port, message.to_value()) {
                    self.pirte
                        .lock()
                        .log_warning(format!("failed to relay to {target}: {err}"));
                    return None;
                }
                Some(Vec::new())
            }
            None => {
                self.pirte
                    .lock()
                    .log_warning(format!("no type I port towards {target}"));
                let failure = ManagementMessage::Ack(dynar_core::message::Ack {
                    plugin: Self::plugin_of(message).unwrap_or_else(|| PluginId::new("unknown")),
                    app: match message {
                        ManagementMessage::Install(p) => p.app.clone(),
                        _ => dynar_foundation::ids::AppId::new(""),
                    },
                    ecu: self.ecu,
                    status: dynar_core::message::AckStatus::Failed(format!(
                        "ECM has no route to {target}"
                    )),
                });
                Some(vec![self.send_uplink(&failure)])
            }
        }
    }

    /// Records that `seq` was applied and prunes ids that fell out of the
    /// dedup window.
    fn remember_seq(&mut self, seq: u64, entry: SeenDownlink) {
        self.seen_seqs.insert(seq, entry);
        let horizon = seq.saturating_sub(DEDUP_WINDOW);
        while let Some((&oldest, _)) = self.seen_seqs.first_key_value() {
            if oldest >= horizon {
                break;
            }
            self.seen_seqs.remove(&oldest);
        }
    }

    /// Returns `true` if `seq` lies below the dedup horizon
    /// (`highest_seen - DEDUP_WINDOW`): its window entry — if it ever had one
    /// — has been pruned, so the duplicate can no longer be told apart from a
    /// fresh downlink.  Such sequences are **rejected**, not applied: their
    /// cached acks are gone, but re-applying would break idempotence, and the
    /// server has long since moved past them.
    fn below_dedup_horizon(&self, seq: u64) -> bool {
        match self.seen_seqs.last_key_value() {
            Some((&highest, _)) => seq < highest.saturating_sub(DEDUP_WINDOW),
            None => false,
        }
    }

    /// Attaches an acknowledgement arriving from a remote SW-C to the most
    /// recent downlink that addressed its plug-in and has no cached response
    /// yet, so a later duplicate delivery can replay it (`encoded` is the
    /// buffer the ack was — or is about to be — sent uplink as).
    fn cache_remote_ack(&mut self, message: &ManagementMessage, encoded: &Payload) {
        let ManagementMessage::Ack(ack) = message else {
            return;
        };
        if let Some(entry) = self
            .seen_seqs
            .values_mut()
            .rev()
            .find(|e| e.plugin.as_ref() == Some(&ack.plugin) && e.acks.is_empty())
        {
            entry.acks.push(encoded.clone());
        }
    }

    fn poll_external(&mut self, ctx: &mut RteContext<'_>) {
        // Drain through the reused scratch buffer: an idle tick touches no
        // allocator, a busy one reuses last tick's capacity.
        let mut messages = std::mem::take(&mut self.rx_scratch);
        debug_assert!(messages.is_empty());
        {
            let mut hub = self.hub.lock();
            hub.drain_into(&self.config.own_endpoint, &mut messages);
        }
        for (from, payload) in messages.drain(..) {
            if *from == *self.config.server_endpoint {
                match crate::protocol::decode_downlink(&payload) {
                    Ok(envelope) => {
                        let (target, seq, epoch, incarnation, message) = (
                            envelope.target,
                            envelope.seq,
                            envelope.boot_epoch,
                            envelope.incarnation,
                            envelope.message,
                        );
                        if epoch != self.boot_epoch {
                            // A straggler from another incarnation of this
                            // vehicle (usually a pre-reboot retransmission
                            // against our now-empty dedup window).  Never
                            // apply it: the server re-issues what it still
                            // wants under the current epoch after resyncing.
                            self.pirte.lock().log_warning(format!(
                                "rejecting downlink seq {seq} from boot epoch {epoch} \
                                 (current epoch {})",
                                self.boot_epoch
                            ));
                            continue;
                        }
                        if incarnation < self.server_incarnation {
                            // A straggler issued by a *previous* incarnation
                            // of the trusted server, delivered late.  Reject
                            // it before the dedup-replay check: even its
                            // cached acks must not be replayed, or a
                            // pre-crash settlement could be mistaken for an
                            // answer to a post-restart operation.
                            self.pirte.lock().log_warning(format!(
                                "rejecting downlink seq {seq} from server incarnation \
                                 {incarnation} (current incarnation {})",
                                self.server_incarnation
                            ));
                            continue;
                        }
                        if incarnation > self.server_incarnation {
                            // A restarted server is talking to us.  Remember
                            // the new incarnation and announce ground truth
                            // unsolicited, so the replayed control plane can
                            // reconcile from what is actually installed.
                            self.server_incarnation = incarnation;
                            self.send_state_report();
                        }
                        // The server demonstrably knows our epoch: stop
                        // re-announcing the post-reboot state report.
                        self.epoch_confirmed = true;
                        if let Some(seen) = self.seen_seqs.get(&seq) {
                            // Duplicate delivery (server retransmission):
                            // don't re-apply, replay the cached acks so a
                            // lost uplink is recovered (byte-identical shared
                            // buffers, no re-encoding).
                            for ack in &seen.acks {
                                self.send_uplink_payload(ack);
                            }
                            continue;
                        }
                        if self.below_dedup_horizon(seq) {
                            // Pruned past: this can only be a duplicate of a
                            // long-settled downlink.  Reject instead of
                            // re-applying it as if it were fresh.
                            self.pirte.lock().log_warning(format!(
                                "rejecting downlink seq {seq} below the dedup horizon"
                            ));
                            continue;
                        }
                        if matches!(message, ManagementMessage::StateReportRequest) {
                            let report = self.send_state_report();
                            self.remember_seq(
                                seq,
                                SeenDownlink {
                                    plugin: None,
                                    acks: vec![report],
                                },
                            );
                            continue;
                        }
                        self.remember_ecc(&message);
                        let plugin = Self::plugin_of(&message);
                        let applied = if target == self.ecu {
                            Some(self.handle_local_management(message))
                        } else {
                            self.forward_to_remote(ctx, target, &message)
                        };
                        // A transiently failed relay leaves the seq unseen:
                        // the next retransmission retries it.
                        if let Some(acks) = applied {
                            self.remember_seq(seq, SeenDownlink { plugin, acks });
                        }
                    }
                    Err(err) => self
                        .pirte
                        .lock()
                        .log_warning(format!("malformed downlink: {err}")),
                }
            } else {
                // Traffic from an external device (e.g. the smart phone).
                match decode_device_message(&payload) {
                    Ok((message_id, value)) => {
                        let Some(route) = self.route_for_message(&message_id).cloned() else {
                            self.pirte
                                .lock()
                                .log_warning(format!("no ECC route for message id {message_id}"));
                            continue;
                        };
                        let data = ManagementMessage::ExternalData {
                            port: route.port,
                            payload: value,
                        };
                        if route.ecu == self.ecu {
                            self.handle_local_management(data);
                        } else {
                            // External data is fire-and-forget: no seq, no
                            // retransmission, so a failed relay just drops.
                            let _ = self.forward_to_remote(ctx, route.ecu, &data);
                        }
                    }
                    Err(err) => self
                        .pirte
                        .lock()
                        .log_warning(format!("malformed device message from {from}: {err}")),
                }
            }
        }
        self.rx_scratch = messages;
    }

    fn poll_remote_swcs(&mut self, ctx: &mut RteContext<'_>) {
        if self.resolved_type_i_in.is_none() {
            // Resolve once, keeping the configuration index alongside each
            // id so diagnostics name the right port; a port that fails to
            // resolve (a configuration error) is reported instead of being
            // silently dropped.
            let mut resolved = Vec::with_capacity(self.config.type_i_in.len());
            for (index, port) in self.config.type_i_in.iter().enumerate() {
                match ctx.port_id(port) {
                    Ok(id) => resolved.push((index, id)),
                    Err(err) => self
                        .pirte
                        .lock()
                        .log_warning(format!("cannot resolve type I port {port}: {err}")),
                }
            }
            self.resolved_type_i_in = Some(resolved);
        }
        // Take/restore around the loop: the resolved list cannot stay
        // borrowed while `self` handles the received messages.
        let resolved = self.resolved_type_i_in.take().expect("resolved above");
        for &(index, port_id) in &resolved {
            loop {
                let value = match ctx.receive_by_id(port_id) {
                    Ok(Some(value)) => value,
                    Ok(None) => break,
                    Err(err) => {
                        let port = &self.config.type_i_in[index];
                        self.pirte
                            .lock()
                            .log_warning(format!("failed to read {port}: {err}"));
                        break;
                    }
                };
                match ManagementMessage::from_value(&value) {
                    Ok(message @ ManagementMessage::Ack(_)) => {
                        let encoded: Payload = crate::protocol::encode_uplink(&message).into();
                        self.note_ack(&message);
                        self.cache_remote_ack(&message, &encoded);
                        self.pending_uplink.push(encoded);
                    }
                    Ok(ManagementMessage::OutboundData {
                        message_id,
                        payload,
                    }) => self.send_to_device(&message_id, &payload),
                    Ok(other) => self.pirte.lock().log_warning(format!(
                        "unexpected uplink message type {}",
                        other.type_id()
                    )),
                    Err(err) => {
                        let port = &self.config.type_i_in[index];
                        self.pirte
                            .lock()
                            .log_warning(format!("malformed uplink on {port}: {err}"));
                    }
                }
            }
        }
        self.resolved_type_i_in = Some(resolved);
        for payload in std::mem::take(&mut self.pending_uplink) {
            self.send_uplink_payload(&payload);
        }
    }

    fn send_to_device(&self, message_id: &str, payload: &dynar_foundation::value::Value) {
        let Some(route) = self.route_for_message(message_id) else {
            self.pirte
                .lock()
                .log_warning(format!("no ECC route for outbound message id {message_id}"));
            return;
        };
        let mut hub = self.hub.lock();
        let _ = hub.send(
            &self.config.own_endpoint,
            &route.endpoint,
            encode_device_message(message_id, payload).into(),
        );
    }

    fn flush_local_direct_outputs(&mut self) {
        let outputs = self.pirte.lock().take_direct_outputs();
        for (_plugin, port, value) in outputs {
            if let Some(route) = self.route_for_port(self.ecu, port).cloned() {
                let mut hub = self.hub.lock();
                let _ = hub.send(
                    &self.config.own_endpoint,
                    &route.endpoint,
                    encode_device_message(&route.message_id, &value).into(),
                );
            }
        }
    }
}

impl ComponentBehavior for EcmSwc {
    fn on_runnable(&mut self, _runnable: &str, ctx: &mut RteContext<'_>) -> Result<()> {
        // 0. Reboot recovery: a rebooted gateway (epoch > 0) announces its
        //    state report — retried every ANNOUNCE_PERIOD_TICKS over the
        //    lossy uplink — until a downlink of its own epoch proves the
        //    server has resynced.
        if !self.epoch_confirmed && self.passes.is_multiple_of(ANNOUNCE_PERIOD_TICKS) {
            self.send_state_report();
        }
        self.passes += 1;
        // 1. External world: trusted server and devices.
        self.poll_external(ctx);
        // 2. Acks and outbound data from remote plug-in SW-Cs.
        self.poll_remote_swcs(ctx);
        // 3. The ECM's own plug-ins (it is a plug-in SW-C itself).
        if self.resolved_inputs.is_none() {
            self.resolved_inputs = Some(PluginSwc::resolve_inputs(&self.pirte_inputs, ctx)?);
        }
        let resolved = self.resolved_inputs.take().expect("resolved above");
        let result = PluginSwc::pirte_pass(&self.pirte, &resolved, &mut self.outbox_scratch, ctx);
        self.resolved_inputs = Some(resolved);
        result?;
        // 4. Outbound external data produced by local plug-ins.
        self.flush_local_direct_outputs();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynar_core::context::{
        ExternalConnectionContext, InstallationContext, LinkTarget, PortInitContext,
        PortLinkContext,
    };
    use dynar_core::message::{AckStatus, InstallationPackage};
    use dynar_core::plugin::PluginPortDirection;
    use dynar_core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
    use dynar_fes::transport::{TransportConfig, TransportHub};
    use dynar_foundation::ids::{AppId, PluginId, VirtualPortId};
    use dynar_foundation::time::Tick;
    use dynar_foundation::value::Value;
    use dynar_rte::ecu::Ecu;
    use dynar_vm::assembler::assemble;

    fn ecm_swc_config() -> PluginSwcConfig {
        PluginSwcConfig::new("ecm-swc").with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(0),
            "PluginData",
            PortKind::TypeII,
            PortDataDirection::ToSystem,
            "s0_out",
        ))
    }

    fn hub() -> SharedHub {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 0,
            ..TransportConfig::default()
        });
        hub.register("server");
        hub.register("phone");
        Arc::new(Mutex::new(hub))
    }

    /// Test-side downlink encoder returning a ready-to-send [`Payload`].
    fn encode_downlink(
        target: EcuId,
        seq: u64,
        boot_epoch: u32,
        incarnation: u32,
        message: &ManagementMessage,
    ) -> Payload {
        crate::protocol::encode_downlink(target, seq, boot_epoch, incarnation, message).into()
    }

    fn com_package() -> InstallationPackage {
        // COM receives external data on P0 (direct) and forwards it through
        // the type II virtual port V0 to remote port P0.
        let binary = assemble(
            "COM",
            r#"
        loop:
            port_pending 0
            push_int 0
            gt
            jump_if_false idle
            take_port 0
            write_port 1
            jump loop
        idle:
            yield
            jump loop
            "#,
        )
        .unwrap()
        .to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new()
                .with_port(
                    "ext_in",
                    PluginPortId::new(0),
                    PluginPortDirection::Required,
                )
                .with_port("fwd", PluginPortId::new(1), PluginPortDirection::Provided),
            PortLinkContext::new()
                .with_link(PluginPortId::new(0), LinkTarget::Direct)
                .with_link(
                    PluginPortId::new(1),
                    LinkTarget::RemotePluginPort {
                        via: VirtualPortId::new(0),
                        remote: PluginPortId::new(0),
                    },
                ),
        )
        .with_ecc(ExternalConnectionContext::new().with_route(
            "phone",
            "Wheels",
            EcuId::new(1),
            PluginPortId::new(0),
        ));
        InstallationPackage::new(
            PluginId::new("COM"),
            AppId::new("remote-control"),
            binary,
            context,
        )
    }

    fn build_ecu(hub: &SharedHub) -> (Ecu, SharedPirte) {
        let mut ecu = Ecu::new(EcuId::new(1));
        let config = EcmConfig::new(ecm_swc_config(), "vehicle-1", "server").with_remote_swc(
            EcuId::new(2),
            "to_ecu2",
            "from_ecu2",
        );
        let descriptor = config.descriptor().unwrap();
        let (behavior, pirte) = EcmSwc::create(EcuId::new(1), config, Arc::clone(hub));
        ecu.add_component(descriptor, Box::new(behavior)).unwrap();
        (ecu, pirte)
    }

    #[test]
    fn downlink_install_for_own_ecu_is_applied_and_acked() {
        let hub = hub();
        let (mut ecu, pirte) = build_ecu(&hub);
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    0,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();

        assert_eq!(pirte.lock().plugin_count(), 1);
        hub.lock().step(Tick::new(2));
        let uplink = hub.lock().drain("server");
        assert_eq!(uplink.len(), 1);
        let message = crate::protocol::decode_uplink(&uplink[0].1).unwrap();
        match message {
            ManagementMessage::Ack(ack) => assert_eq!(ack.status, AckStatus::Installed),
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn downlink_for_remote_ecu_is_relayed_over_type_i_port() {
        let hub = hub();
        let (mut ecu, _pirte) = build_ecu(&hub);
        let package = ManagementMessage::Install(com_package());
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(EcuId::new(2), 0, 0, 0, &package),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();

        let ecm_swc = ecu.component_by_name("ecm-swc").unwrap();
        let relayed = ecu.rte().read_port_by_name(ecm_swc, "to_ecu2").unwrap();
        assert_eq!(ManagementMessage::from_value(&relayed).unwrap(), package);
    }

    #[test]
    fn downlink_for_unknown_ecu_reports_failure_to_server() {
        let hub = hub();
        let (mut ecu, _pirte) = build_ecu(&hub);
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(9),
                    0,
                    0,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(2));
        let uplink = hub.lock().drain("server");
        assert_eq!(uplink.len(), 1);
        match crate::protocol::decode_uplink(&uplink[0].1).unwrap() {
            ManagementMessage::Ack(ack) => assert!(matches!(ack.status, AckStatus::Failed(_))),
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn device_messages_follow_the_ecc_to_local_plugins() {
        let hub = hub();
        let (mut ecu, pirte) = build_ecu(&hub);
        // Install COM locally (its ECC routes "Wheels" to P0 on this ECU).
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    0,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();

        // The phone sends a Wheels command.
        hub.lock()
            .send(
                "phone",
                "vehicle-1",
                encode_device_message("Wheels", &Value::F64(12.0)).into(),
            )
            .unwrap();
        hub.lock().step(Tick::new(2));
        ecu.run(3).unwrap();

        // COM forwarded it through the type II virtual port: the SW-C port
        // carries [recipient id, value].
        let ecm_swc = ecu.component_by_name("ecm-swc").unwrap();
        let forwarded = ecu.rte().read_port_by_name(ecm_swc, "s0_out").unwrap();
        assert_eq!(
            forwarded,
            Value::List(vec![Value::I64(0), Value::F64(12.0)])
        );
        assert!(pirte.lock().stats().signals_out >= 1);
    }

    #[test]
    fn acks_from_remote_swcs_are_forwarded_to_the_server() {
        let hub = hub();
        let (mut ecu, _pirte) = build_ecu(&hub);
        let ack = ManagementMessage::Ack(dynar_core::message::Ack {
            plugin: PluginId::new("OP"),
            app: AppId::new("remote-control"),
            ecu: EcuId::new(2),
            status: AckStatus::Installed,
        });
        // Simulate the remote SW-C's ack arriving on the ECM's inbound type I port.
        let ecm_swc = ecu.component_by_name("ecm-swc").unwrap();
        let frame = dynar_bus::frame::CanId::new(0x30).unwrap();
        ecu.map_signal_in(frame, ecm_swc, "from_ecu2").unwrap();
        ecu.deliver_inbound(frame, ack.to_value());
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(1));
        let uplink = hub.lock().drain("server");
        assert_eq!(uplink.len(), 1);
        assert_eq!(crate::protocol::decode_uplink(&uplink[0].1).unwrap(), ack);
    }

    #[test]
    fn duplicate_downlinks_are_deduplicated_and_acks_replayed() {
        let hub = hub();
        let (mut ecu, pirte) = build_ecu(&hub);
        let downlink = encode_downlink(
            EcuId::new(1),
            7,
            0,
            0,
            &ManagementMessage::Install(com_package()),
        );

        // First delivery installs and acks.
        hub.lock()
            .send("server", "vehicle-1", downlink.clone())
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();
        assert_eq!(pirte.lock().plugin_count(), 1);
        hub.lock().step(Tick::new(2));
        let first = hub.lock().drain("server");
        assert_eq!(first.len(), 1);

        // A retransmission of the same sequence id must not reinstall — the
        // PIRTE sees no second operation at all — but the cached ack is
        // replayed so the server converges even if the first ack was lost.
        hub.lock().send("server", "vehicle-1", downlink).unwrap();
        hub.lock().step(Tick::new(3));
        ecu.run(4).unwrap();
        assert_eq!(pirte.lock().plugin_count(), 1);
        assert_eq!(
            pirte.lock().stats().rejected_operations,
            0,
            "dedup must keep the duplicate away from the PIRTE"
        );
        assert_eq!(pirte.lock().stats().installs, 1);
        hub.lock().step(Tick::new(4));
        let replayed = hub.lock().drain("server");
        assert_eq!(replayed.len(), 1);
        assert_eq!(
            crate::protocol::decode_uplink(&replayed[0].1).unwrap(),
            crate::protocol::decode_uplink(&first[0].1).unwrap(),
            "the replayed ack is byte-identical to the original"
        );
    }

    #[test]
    fn remote_acks_are_cached_for_replay_on_duplicates() {
        let hub = hub();
        let (mut ecu, _pirte) = build_ecu(&hub);
        let package = ManagementMessage::Install(com_package());
        let downlink = encode_downlink(EcuId::new(2), 3, 0, 0, &package);

        // First delivery relays towards ECU 2.
        hub.lock()
            .send("server", "vehicle-1", downlink.clone())
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();

        // A duplicate before the remote ack exists is swallowed silently.
        hub.lock()
            .send("server", "vehicle-1", downlink.clone())
            .unwrap();
        hub.lock().step(Tick::new(2));
        ecu.run(3).unwrap();
        hub.lock().step(Tick::new(3));
        assert!(hub.lock().drain("server").is_empty());

        // The remote SW-C acks; the gateway forwards and caches it.
        let ack = ManagementMessage::Ack(dynar_core::message::Ack {
            plugin: PluginId::new("COM"),
            app: AppId::new("remote-control"),
            ecu: EcuId::new(2),
            status: AckStatus::Installed,
        });
        let ecm_swc = ecu.component_by_name("ecm-swc").unwrap();
        let frame = dynar_bus::frame::CanId::new(0x30).unwrap();
        ecu.map_signal_in(frame, ecm_swc, "from_ecu2").unwrap();
        ecu.deliver_inbound(frame, ack.to_value());
        ecu.run(4).unwrap();
        hub.lock().step(Tick::new(4));
        assert_eq!(hub.lock().drain("server").len(), 1);

        // Another duplicate now replays the cached remote ack.
        hub.lock().send("server", "vehicle-1", downlink).unwrap();
        hub.lock().step(Tick::new(5));
        ecu.run(5).unwrap();
        hub.lock().step(Tick::new(6));
        let replayed = hub.lock().drain("server");
        assert_eq!(replayed.len(), 1);
        assert_eq!(crate::protocol::decode_uplink(&replayed[0].1).unwrap(), ack);
    }

    fn build_ecu_with_epoch(hub: &SharedHub, boot_epoch: u32) -> (Ecu, SharedPirte) {
        let mut ecu = Ecu::new(EcuId::new(1));
        let config = EcmConfig::new(ecm_swc_config(), "vehicle-1", "server")
            .with_boot_epoch(boot_epoch)
            .with_remote_swc(EcuId::new(2), "to_ecu2", "from_ecu2");
        let descriptor = config.descriptor().unwrap();
        let (behavior, pirte) = EcmSwc::create(EcuId::new(1), config, Arc::clone(hub));
        ecu.add_component(descriptor, Box::new(behavior)).unwrap();
        (ecu, pirte)
    }

    fn uplinks(hub: &SharedHub) -> Vec<ManagementMessage> {
        hub.lock()
            .drain("server")
            .iter()
            .map(|(_, payload)| crate::protocol::decode_uplink(payload).unwrap())
            .collect()
    }

    /// Regression (boot epochs): a downlink stamped with another incarnation's
    /// epoch — a straggler retransmission from before a reboot — must be
    /// rejected, not applied against the rebooted gateway's empty dedup
    /// window.
    #[test]
    fn old_epoch_downlinks_are_rejected_not_applied() {
        let hub = hub();
        let (mut ecu, pirte) = build_ecu_with_epoch(&hub, 1);

        // A pre-reboot (epoch 0) install arrives: dropped, no ack.
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    0,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();
        assert_eq!(pirte.lock().plugin_count(), 0, "old-epoch install rejected");
        hub.lock().step(Tick::new(2));
        assert!(
            uplinks(&hub)
                .iter()
                .all(|m| !matches!(m, ManagementMessage::Ack(_))),
            "no acknowledgement for a rejected downlink"
        );

        // The same package re-issued under the current epoch applies.
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    1,
                    1,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(3));
        ecu.run(2).unwrap();
        assert_eq!(pirte.lock().plugin_count(), 1);
    }

    /// A rebooted gateway (epoch > 0) announces its state report and keeps
    /// re-announcing every [`ANNOUNCE_PERIOD_TICKS`] until the first downlink
    /// of its own epoch confirms the server knows the new epoch.
    #[test]
    fn rebooted_gateway_announces_until_the_epoch_is_confirmed() {
        let hub = hub();
        let (mut ecu, _pirte) = build_ecu_with_epoch(&hub, 2);

        ecu.run(1).unwrap();
        hub.lock().step(Tick::new(1));
        let first = uplinks(&hub);
        assert_eq!(
            first,
            vec![ManagementMessage::StateReport {
                boot_epoch: 2,
                plugins: vec![],
            }],
            "boot announcement carries the new epoch and the (empty) truth"
        );

        // Unconfirmed: the announcement is retried after the period lapses.
        ecu.run(ANNOUNCE_PERIOD_TICKS).unwrap();
        hub.lock().step(Tick::new(2));
        assert_eq!(uplinks(&hub).len(), 1, "periodic re-announcement");

        // A downlink of the gateway's own epoch confirms; announcing stops.
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    2,
                    0,
                    &ManagementMessage::StateReportRequest,
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(3));
        ecu.run(1).unwrap();
        hub.lock().step(Tick::new(4));
        // The request itself is answered...
        assert_eq!(uplinks(&hub).len(), 1);
        // ...but no further spontaneous announcements follow.
        ecu.run(3 * ANNOUNCE_PERIOD_TICKS).unwrap();
        hub.lock().step(Tick::new(5));
        assert!(
            uplinks(&hub).is_empty(),
            "announcing stopped once confirmed"
        );
    }

    /// The state report answers with the gateway's ground truth — plug-ins it
    /// saw installed via acknowledgements — and duplicates of the request
    /// replay the cached report.
    #[test]
    fn state_report_request_returns_the_installed_inventory() {
        let hub = hub();
        let (mut ecu, _pirte) = build_ecu(&hub);
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    0,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(2));
        let acks = uplinks(&hub);
        assert_eq!(acks.len(), 1, "install acked");

        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    1,
                    0,
                    0,
                    &ManagementMessage::StateReportRequest,
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(3));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(4));
        let reports = uplinks(&hub);
        assert_eq!(
            reports,
            vec![ManagementMessage::StateReport {
                boot_epoch: 0,
                plugins: vec![(
                    PluginId::new("COM"),
                    AppId::new("remote-control"),
                    EcuId::new(1),
                )],
            }]
        );
    }

    /// Regression (dedup horizon): a duplicate delivered *after* the window
    /// pruned past its sequence id used to be re-applied as a fresh downlink.
    /// Below-horizon sequences must be rejected; the id exactly *at* the
    /// horizon is still inside the window.
    #[test]
    fn below_horizon_duplicates_are_rejected_not_reapplied() {
        let hub = hub();
        let (mut ecu, pirte) = build_ecu(&hub);
        let install = encode_downlink(
            EcuId::new(1),
            0,
            0,
            0,
            &ManagementMessage::Install(com_package()),
        );

        // Apply seq 0, then advance the window far past it.
        hub.lock()
            .send("server", "vehicle-1", install.clone())
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();
        assert_eq!(pirte.lock().stats().installs, 1);
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    DEDUP_WINDOW + 1,
                    0,
                    0,
                    &ManagementMessage::Stop {
                        plugin: PluginId::new("COM"),
                    },
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(2));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(3));
        hub.lock().drain("server");

        // seq 0 now lies below the horizon (highest 1025 - window 1024 = 1):
        // the duplicate is rejected — not re-applied, not acknowledged.
        hub.lock().send("server", "vehicle-1", install).unwrap();
        hub.lock().step(Tick::new(4));
        ecu.run(2).unwrap();
        assert_eq!(
            pirte.lock().stats().installs,
            1,
            "the below-horizon duplicate must not install again"
        );
        assert_eq!(pirte.lock().stats().rejected_operations, 0);
        hub.lock().step(Tick::new(5));
        assert!(
            uplinks(&hub).is_empty(),
            "no ack and no replay for a rejected below-horizon duplicate"
        );

        // Boundary: seq exactly at the horizon is still inside the window —
        // an unseen id there is applied normally.
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    1,
                    0,
                    0,
                    &ManagementMessage::Start {
                        plugin: PluginId::new("COM"),
                    },
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(6));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(7));
        let at_horizon = uplinks(&hub);
        assert_eq!(at_horizon.len(), 1, "at-horizon sequence is applied");
        assert!(matches!(
            &at_horizon[0],
            ManagementMessage::Ack(ack) if ack.status == AckStatus::Started
        ));
    }

    /// Regression (server incarnations): a downlink stamped with a *lower*
    /// server incarnation is a straggler from before a server crash.  It must
    /// be rejected before the dedup-replay check — replaying its cached ack
    /// could settle a post-restart operation with a pre-crash answer.
    #[test]
    fn stale_incarnation_downlinks_are_rejected_without_ack_replay() {
        let hub = hub();
        let (mut ecu, pirte) = build_ecu(&hub);

        // The restarted server (incarnation 1) installs COM under seq 0.
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    0,
                    1,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();
        assert_eq!(pirte.lock().plugin_count(), 1);
        hub.lock().step(Tick::new(2));
        // First contact with incarnation 1: an unsolicited state report
        // announces ground truth, followed by the install ack.
        let first = uplinks(&hub);
        assert!(
            first
                .iter()
                .any(|m| matches!(m, ManagementMessage::StateReport { .. })),
            "a newer incarnation is answered with an unsolicited state report"
        );
        assert!(first
            .iter()
            .any(|m| matches!(m, ManagementMessage::Ack(a) if a.status == AckStatus::Installed)),);

        // A pre-crash straggler (incarnation 0) re-delivers the same seq:
        // nothing is applied and — crucially — nothing is replayed.
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    0,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(3));
        ecu.run(2).unwrap();
        assert_eq!(pirte.lock().plugin_count(), 1);
        assert_eq!(pirte.lock().stats().installs, 1);
        hub.lock().step(Tick::new(4));
        assert!(
            uplinks(&hub).is_empty(),
            "no ack replay for a stale-incarnation straggler"
        );
    }

    /// The first downlink from a higher server incarnation makes the gateway
    /// announce its ground truth unsolicited; retransmissions under the new
    /// incarnation still replay cached acks (the dedup window survives a
    /// server restart — only the vehicle's own reboot clears it).
    #[test]
    fn newer_incarnation_triggers_state_report_and_keeps_dedup() {
        let hub = hub();
        let (mut ecu, pirte) = build_ecu(&hub);

        // Incarnation 0 installs COM.
        hub.lock()
            .send(
                "server",
                "vehicle-1",
                encode_downlink(
                    EcuId::new(1),
                    0,
                    0,
                    0,
                    &ManagementMessage::Install(com_package()),
                ),
            )
            .unwrap();
        hub.lock().step(Tick::new(1));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(2));
        assert_eq!(uplinks(&hub).len(), 1, "install acked");

        // The server restarts and speaks with incarnation 1: the gateway
        // reports what is actually installed before handling the message.
        let stop = encode_downlink(
            EcuId::new(1),
            1,
            0,
            1,
            &ManagementMessage::Stop {
                plugin: PluginId::new("COM"),
            },
        );
        hub.lock()
            .send("server", "vehicle-1", stop.clone())
            .unwrap();
        hub.lock().step(Tick::new(3));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(4));
        let after_restart = uplinks(&hub);
        assert_eq!(
            after_restart[0],
            ManagementMessage::StateReport {
                boot_epoch: 0,
                plugins: vec![(
                    PluginId::new("COM"),
                    AppId::new("remote-control"),
                    EcuId::new(1),
                )],
            },
            "ground truth announced to the restarted server"
        );
        assert!(matches!(
            &after_restart[1],
            ManagementMessage::Ack(ack) if ack.status == AckStatus::Stopped
        ));

        // A retransmission of seq 1 under incarnation 1 replays the cached
        // ack without a second state report or a re-applied stop.
        hub.lock().send("server", "vehicle-1", stop).unwrap();
        hub.lock().step(Tick::new(5));
        ecu.run(2).unwrap();
        hub.lock().step(Tick::new(6));
        let replayed = uplinks(&hub);
        assert_eq!(replayed.len(), 1);
        assert!(matches!(
            &replayed[0],
            ManagementMessage::Ack(ack) if ack.status == AckStatus::Stopped
        ));
        assert_eq!(pirte.lock().stats().installs, 1);
    }
}
