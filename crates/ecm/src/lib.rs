//! The External Communication Manager (ECM).
//!
//! The ECM SW-C "inherits from the plug-in SW-C and adds a communication
//! module for interacting with the external world.  It serves as a gateway
//! for plug-in installation, allowing to download and distribute plug-in
//! binaries to the different ECUs, as well as to transfer information to and
//! from off-board services, e.g. for participating in FESs" (paper §3.1.1).
//!
//! * [`protocol`] — the wire format between the trusted server and the ECM
//!   (downlink messages carry a target ECU plus a management message; uplink
//!   messages are acknowledgements and telemetry);
//! * [`gateway`] — the [`gateway::EcmSwc`] component behaviour: it hosts its
//!   own PIRTE (the ECM is itself a plug-in SW-C), talks to the trusted
//!   server and external devices over the [`dynar_fes`] transport, relays
//!   installation packages to the other plug-in SW-Cs over type I ports and
//!   routes external data according to the External Connection Contexts it
//!   has seen.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gateway;
pub mod protocol;

pub use gateway::{EcmConfig, EcmSwc, SharedHub};
pub use protocol::{decode_downlink, decode_uplink, encode_downlink, encode_uplink};
