#!/usr/bin/env bash
# Runs the paper benchmarks and writes a dated JSON snapshot
# (BENCH_<date>.json in the repository root) so the performance trajectory of
# the hot paths is recorded PR over PR.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cargo bench -p dynar-bench | tee "$raw"

python3 - "$raw" "$out" <<'PY'
import datetime
import json
import re
import subprocess
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
pattern = re.compile(
    r"^(\S+)\s+time:\s+\[\s*(\S+)\s+(\S+)\s+(\S+)\s*\]\s+\((\d+) iterations\)"
)
units = {"ns": 1, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(text):
    match = re.match(r"([0-9.]+)(ns|µs|us|ms|s)$", text)
    if not match:
        raise ValueError(f"unparseable duration: {text}")
    return float(match.group(1)) * units[match.group(2)]


results = []
with open(raw_path, encoding="utf-8") as raw:
    for line in raw:
        match = pattern.match(line.strip())
        if match:
            results.append(
                {
                    "bench": match.group(1),
                    "min_ns": to_ns(match.group(2)),
                    "mean_ns": to_ns(match.group(3)),
                    "max_ns": to_ns(match.group(4)),
                    "iterations": int(match.group(5)),
                }
            )

# The fleet-tick group must include the lossy-hub datapoint so the
# reliability plane's retransmission overhead stays on the perf trajectory.
if not any("lossy" in r["bench"] for r in results):
    sys.exit("bench snapshot is missing the bench_fleet_tick lossy-hub datapoint")

# ... and the journaled-tick datapoint, so the durability plane's overhead
# stays on the trajectory too (scripts/bench_compare.sh gates it).
if not any("tick_with_journal" in r["bench"] for r in results):
    sys.exit("bench snapshot is missing the bench_fleet_tick tick_with_journal datapoint")

# ... and the campaign-tick datapoint, so the orchestration plane's overhead
# stays on the trajectory too (scripts/bench_compare.sh gates it at
# BENCH_CAMPAIGN_OVERHEAD_PCT over tick/50).
if not any("campaign_tick" in r["bench"] for r in results):
    sys.exit("bench snapshot is missing the bench_fleet_tick campaign_tick datapoint")

# ... and the sharded-control-plane datapoints: the 10k-vehicle serial tick
# (linear-scaling evidence) and the 8-shard parallel tick next to its serial
# twin (BENCH_PAR_SPEEDUP in scripts/bench_compare.sh).
benches = {r["bench"] for r in results}
for required in ("bench_fleet_tick/tick/10000", "bench_fleet_tick/par_tick/500"):
    if required not in benches:
        sys.exit(f"bench snapshot is missing the {required} datapoint")

# ... and the compiled execution plane next to its interpreter baseline: a
# snapshot without the bench_vm compiled datapoint would silently drop the
# fast plane off the perf trajectory (BENCH_VM_SPEEDUP in
# scripts/bench_compare.sh).
for required in ("bench_vm/interpreter_arith", "bench_vm/compiled_arith"):
    if required not in benches:
        sys.exit(f"bench snapshot is missing the {required} datapoint")

rev = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip()
snapshot = {
    "date": datetime.date.today().isoformat(),
    "git": rev,
    "command": "cargo bench -p dynar-bench",
    "results": results,
}

# Compare against the most recent previous snapshot, if any, so every
# snapshot carries its own baseline_mean_ns/speedup trajectory.
import pathlib

previous = sorted(
    p for p in pathlib.Path(".").glob("BENCH_*.json") if p.name != pathlib.Path(out_path).name
)
if previous:
    with open(previous[-1], encoding="utf-8") as prev_file:
        prev = json.load(prev_file)
    prev_means = {r["bench"]: r["mean_ns"] for r in prev.get("results", [])}
    snapshot["baseline"] = {
        "git": prev.get("git", ""),
        "note": f"previous snapshot {previous[-1].name}; mean_ns per benchmark",
        "mean_ns": prev_means,
    }
    for result in results:
        base = prev_means.get(result["bench"])
        if base:
            result["baseline_mean_ns"] = base
            result["speedup"] = round(base / result["mean_ns"], 2) if result["mean_ns"] else None

with open(out_path, "w", encoding="utf-8") as out:
    json.dump(snapshot, out, indent=2)
    out.write("\n")
print(f"wrote {out_path} ({len(results)} benchmarks)")
PY
