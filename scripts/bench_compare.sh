#!/usr/bin/env bash
# Compares two benchmark snapshots produced by scripts/bench_snapshot.sh and
# fails when any pinned benchmark's mean regressed by more than the allowed
# tolerance (default 15 %).
#
# Usage: scripts/bench_compare.sh <baseline.json> <candidate.json>
#
# Environment:
#   BENCH_COMPARE_TOLERANCE_PCT  maximum allowed mean regression per pinned
#                                benchmark, in percent (default: 15)
#   BENCH_JOURNAL_OVERHEAD_PCT   maximum allowed journaling overhead of
#                                tick_with_journal/50 over tick/50 within the
#                                candidate snapshot, in percent (default: 50;
#                                tighten on a quiet dedicated runner)
#   BENCH_CAMPAIGN_OVERHEAD_PCT  maximum allowed campaign-plane overhead of
#                                campaign_tick/50 over tick/50 within the
#                                candidate snapshot, in percent (default: 10;
#                                a held campaign's per-tick gate evaluation
#                                must stay a rounding error on the fleet tick)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -ne 2 ]; then
    echo "usage: $0 <baseline.json> <candidate.json>" >&2
    exit 2
fi

baseline="$1" candidate="$2" \
tolerance="${BENCH_COMPARE_TOLERANCE_PCT:-15}" \
journal_overhead="${BENCH_JOURNAL_OVERHEAD_PCT:-50}" \
campaign_overhead="${BENCH_CAMPAIGN_OVERHEAD_PCT:-10}" \
python3 - <<'PY'
import json
import os
import sys

baseline_path = os.environ["baseline"]
candidate_path = os.environ["candidate"]
tolerance = float(os.environ["tolerance"])
journal_overhead = float(os.environ["journal_overhead"])
campaign_overhead = float(os.environ["campaign_overhead"])

# The hot paths whose trajectory is pinned PR over PR.  New benchmarks (and
# retired ones) are reported but never fail the comparison: only a pinned
# benchmark present in BOTH snapshots can regress.
PINNED = [
    "fig3_signal_chain/drive_10_ticks",
    "e1_deployment/plan_remote_control_app",
    "e2_mediation_overhead/direct_rte_route",
    "e2_mediation_overhead/pirte_mediated_route",
    "e6_port_multiplexing/dispatch_type_ii/1",
    "e6_port_multiplexing/dispatch_type_ii/16",
    "e6_port_multiplexing/dispatch_type_ii/64",
    "bench_fleet_tick/tick/10",
    "bench_fleet_tick/tick/50",
    "bench_fleet_tick/tick/100",
    "bench_fleet_tick/tick/500",
    "bench_fleet_tick/tick/10000",
    "bench_fleet_tick/par_tick/500",
    "bench_fleet_tick/lossy_tick/50",
    "bench_fleet_tick/tick_with_journal/50",
    "bench_fleet_tick/campaign_tick/50",
    "bench_vm/interpreter_arith",
    "bench_vm/interpreter_ports",
    "bench_vm/interpreter_branch",
]


def means(path):
    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)
    return {r["bench"]: r["mean_ns"] for r in snapshot.get("results", [])}


base = means(baseline_path)
cand = means(candidate_path)

# A pinned benchmark missing from the CANDIDATE is its own, explicit
# failure mode: the old behaviour ("skipped", then a confusing pass or an
# unrelated KeyError) hid renamed or silently-dropped hot-path benchmarks.
# Missing only from the BASELINE means the benchmark was pinned after the
# baseline was recorded — it has no trajectory yet, so it is reported and
# skipped, never failed (the next snapshot starts its trajectory).
missing = [bench for bench in PINNED if bench not in cand]
if missing:
    print("FAIL: pinned benchmark(s) missing from the candidate snapshot "
          f"({candidate_path}):", file=sys.stderr)
    for bench in missing:
        print(f"  {bench}", file=sys.stderr)
    print("(renamed a benchmark? update PINNED in scripts/bench_compare.sh "
          "and re-record the snapshot)", file=sys.stderr)
    sys.exit(3)
for bench in PINNED:
    if bench not in base:
        print(f"  {bench}: newly pinned (absent from baseline "
              f"{baseline_path}) — no trajectory to gate yet")

failures = []
print(f"comparing {candidate_path} against {baseline_path} "
      f"(tolerance {tolerance:.0f}%)")
for bench in sorted(set(base) | set(cand)):
    b, c = base.get(bench), cand.get(bench)
    if b is None or c is None:
        print(f"  {bench}: only in {'candidate' if b is None else 'baseline'} — skipped (not pinned)")
        continue
    delta_pct = (c - b) / b * 100.0
    pinned = bench in PINNED
    marker = " "
    if pinned and delta_pct > tolerance:
        failures.append((bench, b, c, delta_pct))
        marker = "!"
    print(f"  {marker} {bench}: {b:.0f} ns -> {c:.0f} ns ({delta_pct:+.1f}%"
          f"{', pinned' if pinned else ''})")

if failures:
    print(f"\nFAIL: {len(failures)} pinned benchmark(s) regressed beyond "
          f"{tolerance:.0f}%:", file=sys.stderr)
    for bench, b, c, delta in failures:
        print(f"  {bench}: {b:.0f} ns -> {c:.0f} ns ({delta:+.1f}%)", file=sys.stderr)
    sys.exit(1)

# Durability must stay close to free: within the candidate snapshot alone,
# the journaled steady-state tick may cost at most journal_overhead % more
# than the plain one.  This is an absolute property of the candidate, not a
# trajectory, so it holds even when the baseline predates the journal.
#
# The ratio is taken over min_ns, and the default allowance is deliberately
# loose: the two benchmarks are measured in separate windows, and on a busy
# shared runner the windows drift by ±30% minute over minute (an interleaved
# A/B of the same two scenarios measures the true overhead at ~5%).  The
# gate exists to catch *structural* regressions — journaling going O(V) per
# tick, or compaction firing every append — which show up as 2x+, far above
# any drift.  Tighten via BENCH_JOURNAL_OVERHEAD_PCT on a quiet runner.


def mins(path):
    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)
    return {r["bench"]: r["min_ns"] for r in snapshot.get("results", [])}


cand_min = mins(candidate_path)
plain = cand_min["bench_fleet_tick/tick/50"]
journaled = cand_min["bench_fleet_tick/tick_with_journal/50"]
overhead_pct = (journaled - plain) / plain * 100.0
print(f"journal overhead (min): tick/50 {plain:.0f} ns -> tick_with_journal/50 "
      f"{journaled:.0f} ns ({overhead_pct:+.1f}%, allowed {journal_overhead:.0f}%)")
if overhead_pct > journal_overhead:
    print(f"FAIL: journaling overhead {overhead_pct:+.1f}% exceeds "
          f"{journal_overhead:.0f}%", file=sys.stderr)
    sys.exit(1)

# The campaign plane must stay near-free on the steady-state tick: within
# the candidate snapshot alone, the tick with a held mid-wave campaign
# (whole fleet exposed, gate re-evaluated every round) may cost at most
# campaign_overhead % more than the plain one.  Like the journal gate this
# is an absolute property of the candidate, measured over min_ns; the tight
# default catches the structural failure — gate evaluation going O(fleet)
# work per exposed vehicle, or verdict records being journaled on held
# rounds — not runner drift.
campaigned = cand_min["bench_fleet_tick/campaign_tick/50"]
overhead_pct = (campaigned - plain) / plain * 100.0
print(f"campaign overhead (min): tick/50 {plain:.0f} ns -> campaign_tick/50 "
      f"{campaigned:.0f} ns ({overhead_pct:+.1f}%, allowed {campaign_overhead:.0f}%)")
if overhead_pct > campaign_overhead:
    print(f"FAIL: campaign overhead {overhead_pct:+.1f}% exceeds "
          f"{campaign_overhead:.0f}%", file=sys.stderr)
    sys.exit(1)

# The compiled execution plane, report-only: BENCH_VM_SPEEDUP is the fast
# plane against the pinned interpreter baseline per workload shape within
# the candidate snapshot.  Not gated — the interpreter datapoints above pin
# the baseline itself, and the speedup is runner-dependent; the bench binary
# already fails outright if superinstructions stop firing.
for workload in ("arith", "ports", "branch"):
    interp = cand.get(f"bench_vm/interpreter_{workload}")
    compiled = cand.get(f"bench_vm/compiled_{workload}")
    if interp and compiled:
        print(f"BENCH_VM_SPEEDUP/{workload}: {interp / compiled:.2f}x "
              f"(interpreter {interp:.0f} ns vs compiled {compiled:.0f} ns, "
              "report-only)")

# The sharded control plane, report-only: BENCH_PAR_SPEEDUP is the 8-shard
# parallel tick against the serial tick at equal fleet size.  It is not
# gated — on a single-core runner the pool is pure overhead and the speedup
# sits below 1; on a multi-core runner it should approach min(8, cores).
for size in ("500", "10000"):
    serial = cand.get(f"bench_fleet_tick/tick/{size}")
    par = cand.get(f"bench_fleet_tick/par_tick/{size}")
    if serial and par:
        print(f"BENCH_PAR_SPEEDUP/{size}: {serial / par:.2f}x "
              f"(tick/{size} {serial:.0f} ns vs par_tick/{size} {par:.0f} ns, "
              "report-only)")

print("OK: no pinned benchmark regressed beyond the tolerance")
PY
